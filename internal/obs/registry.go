// Package obs is the instrumentation plane: a dependency-free metrics
// registry (atomic counters, gauges, fixed-bucket histograms with quantile
// snapshots), lightweight span tracing, a leveled structured logger, and a
// DebugServer exposing it all over HTTP (/metrics in Prometheus text format,
// /debug/spans, /healthz, net/http/pprof).
//
// Two properties govern every type here, because the package is threaded
// through the certification hot paths:
//
//   - nil safety: every method on every instrument is a no-op on a nil
//     receiver, so uninstrumented components carry nil fields and pay one
//     predictable branch — all existing code runs unchanged with no
//     registry attached.
//   - allocation freedom: recording (Counter.Inc, Gauge.Set,
//     Histogram.Observe, SpanHandle.End) never allocates; only registration
//     and snapshotting (cold paths) do.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, rendered as {key="value"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label {
	return Label{Key: key, Value: value}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric is one registered instrument plus its identity.
type metric struct {
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups same-name metrics for one HELP/TYPE header.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	metrics []*metric
	byKey   map[string]*metric // label signature → metric
}

// Registry holds named instruments and renders them in Prometheus text
// format. The zero registry is not usable; a nil *Registry is: every
// constructor returns a nil instrument, whose methods no-op.
//
// Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family registration order (stable /metrics output)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey is the canonical label signature (sorted by key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// get returns the family (creating it) and the existing metric for the label
// set, if any. Caller holds r.mu.
func (r *Registry) get(name, help, typ string, labels []Label) (*family, *metric) {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f, f.byKey[labelKey(labels)]
}

// add registers a new metric in the family. Caller holds r.mu.
func (f *family) add(m *metric) {
	f.metrics = append(f.metrics, m)
	f.byKey[labelKey(m.labels)] = m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. Same identity → same instrument, so components re-created
// across restarts (issuer failover) keep accumulating into one series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "counter", labels)
	if m != nil {
		return m.c
	}
	c := &Counter{}
	f.add(&metric{name: name, labels: append([]Label(nil), labels...), c: c})
	return c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "gauge", labels)
	if m != nil {
		return m.g
	}
	g := &Gauge{}
	f.add(&metric{name: name, labels: append([]Label(nil), labels...), g: g})
	return g
}

// Histogram returns the histogram registered under (name, labels), with the
// given bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "histogram", labels)
	if m != nil {
		return m.h
	}
	h := NewHistogram(buckets)
	f.add(&metric{name: name, labels: append([]Label(nil), labels...), h: h})
	return h
}

// RegisterHistogram attaches an externally created histogram (e.g. a
// pipeline's always-on stage histogram) under a registry name. If the
// identity already exists, the existing histogram wins and is returned;
// otherwise h itself is registered and returned.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) *Histogram {
	if r == nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "histogram", labels)
	if m != nil {
		return m.h
	}
	f.add(&metric{name: name, labels: append([]Label(nil), labels...), h: h})
	return h
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// renderLabels renders {k="v",...} (empty string for no labels).
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, families in registration order, series in creation
// order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	for _, name := range order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range f.metrics {
			switch {
			case m.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", m.name, renderLabels(m.labels), m.c.Value())
			case m.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", m.name, renderLabels(m.labels), m.g.Value())
			case m.h != nil:
				s := m.h.Snapshot()
				cum := uint64(0)
				for i, bc := range s.Buckets {
					cum += bc
					le := "+Inf"
					if i < len(s.Bounds) {
						le = formatFloat(s.Bounds[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, renderLabels(m.labels, L("le", le)), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, renderLabels(m.labels), formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", m.name, renderLabels(m.labels), s.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
