package mbtree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dcert/internal/chash"
)

func mustInsert(t *testing.T, tr *Tree, v uint64, val string) {
	t.Helper()
	if err := tr.Insert(v, []byte(val)); err != nil {
		t.Fatalf("Insert(%d): %v", v, err)
	}
}

func mustRoot(t *testing.T, tr *Tree) chash.Hash {
	t.Helper()
	h, err := tr.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	return h
}

func TestNewRejectsBadOrder(t *testing.T) {
	if _, err := New(2); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("want ErrBadOrder, got %v", err)
	}
	if _, err := NewPartial(1, chash.Zero, NewWitness()); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("want ErrBadOrder, got %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := NewDefault()
	if !mustRoot(t, tr).IsZero() {
		t.Fatal("empty tree root must be zero")
	}
	got, err := tr.Range(0, 100)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Range over empty tree returned %d entries", len(got))
	}
}

func TestInsertGet(t *testing.T) {
	tr := NewDefault()
	for i := uint64(0); i < 500; i++ {
		mustInsert(t, tr, i*2, fmt.Sprintf("v%d", i))
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	for i := uint64(0); i < 500; i++ {
		got, err := tr.Get(i * 2)
		if err != nil {
			t.Fatalf("Get(%d): %v", i*2, err)
		}
		if want := fmt.Sprintf("v%d", i); !bytes.Equal(got, []byte(want)) {
			t.Fatalf("Get(%d) = %q, want %q", i*2, got, want)
		}
		if got, err := tr.Get(i*2 + 1); err != nil || got != nil {
			t.Fatalf("Get(absent %d) = %q, %v", i*2+1, got, err)
		}
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := NewDefault()
	mustInsert(t, tr, 7, "old")
	mustInsert(t, tr, 7, "new")
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	got, err := tr.Get(7)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get = %q", got)
	}
}

func TestRangeQueries(t *testing.T) {
	tr, err := New(4) // small fanout forces deep trees
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint64(0); i < 200; i++ {
		mustInsert(t, tr, i*10, fmt.Sprintf("v%d", i))
	}
	tests := []struct {
		lo, hi uint64
		want   int
	}{
		{0, 1990, 200},
		{0, 0, 1},
		{5, 9, 0},
		{100, 200, 11},
		{1985, 5000, 1},
		{2000, 9999, 0},
	}
	for _, tc := range tests {
		got, err := tr.Range(tc.lo, tc.hi)
		if err != nil {
			t.Fatalf("Range(%d,%d): %v", tc.lo, tc.hi, err)
		}
		if len(got) != tc.want {
			t.Fatalf("Range(%d,%d) = %d entries, want %d", tc.lo, tc.hi, len(got), tc.want)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Version >= got[i].Version {
				t.Fatal("range result must be strictly ordered")
			}
		}
	}
}

func TestRangeRejectsInvertedBounds(t *testing.T) {
	tr := NewDefault()
	if _, err := tr.Range(10, 5); !errors.Is(err, ErrBadRange) {
		t.Fatalf("want ErrBadRange, got %v", err)
	}
}

func TestRootDeterministicAcrossInsertOrder(t *testing.T) {
	versions := make([]uint64, 300)
	for i := range versions {
		versions[i] = uint64(i * 3)
	}
	build := func(order []uint64) chash.Hash {
		tr, err := New(8)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for _, v := range order {
			mustInsert(t, tr, v, fmt.Sprintf("val-%d", v))
		}
		return mustRoot(t, tr)
	}
	inOrder := build(versions)
	shuffled := append([]uint64(nil), versions...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	// B+-trees are not order-independent in shape, but both roots must
	// commit to the same entry set; we check both trees answer identically.
	shufRoot := build(shuffled)
	_ = inOrder
	_ = shufRoot
	// Structural equality is not required; range answers must agree.
	trA, err := New(8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	trB, err := New(8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, v := range versions {
		mustInsert(t, trA, v, fmt.Sprintf("val-%d", v))
	}
	for _, v := range shuffled {
		mustInsert(t, trB, v, fmt.Sprintf("val-%d", v))
	}
	ra, err := trA.Range(0, 1000)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	rb, err := trB.Range(0, 1000)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("result sizes differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Version != rb[i].Version || !bytes.Equal(ra[i].Value, rb[i].Value) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestRangeProofRoundTrip(t *testing.T) {
	tr, err := New(5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint64(0); i < 300; i++ {
		mustInsert(t, tr, i, fmt.Sprintf("h%d", i))
	}
	root := mustRoot(t, tr)

	for _, rg := range [][2]uint64{{0, 299}, {50, 60}, {0, 0}, {299, 299}, {500, 600}} {
		proof, err := tr.WitnessForRange(rg[0], rg[1])
		if err != nil {
			t.Fatalf("WitnessForRange(%v): %v", rg, err)
		}
		got, err := VerifyRange(5, root, rg[0], rg[1], proof)
		if err != nil {
			t.Fatalf("VerifyRange(%v): %v", rg, err)
		}
		want, err := tr.Range(rg[0], rg[1])
		if err != nil {
			t.Fatalf("Range: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("range %v: verified %d entries, want %d", rg, len(got), len(want))
		}
		for i := range got {
			if got[i].Version != want[i].Version || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("range %v entry %d mismatch", rg, i)
			}
		}
	}
}

func TestRangeProofCompleteness(t *testing.T) {
	// A proof for one range cannot answer a wider range: the verifier's scan
	// hits a missing node instead of silently dropping results.
	tr, err := New(4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint64(0); i < 200; i++ {
		mustInsert(t, tr, i, "x")
	}
	root := mustRoot(t, tr)
	proof, err := tr.WitnessForRange(50, 60)
	if err != nil {
		t.Fatalf("WitnessForRange: %v", err)
	}
	if _, err := VerifyRange(4, root, 50, 150, proof); !errors.Is(err, ErrMissingNode) {
		t.Fatalf("want ErrMissingNode for widened range, got %v", err)
	}
}

func TestRangeProofRejectsWrongRoot(t *testing.T) {
	tr := NewDefault()
	for i := uint64(0); i < 50; i++ {
		mustInsert(t, tr, i, "x")
	}
	proof, err := tr.WitnessForRange(0, 10)
	if err != nil {
		t.Fatalf("WitnessForRange: %v", err)
	}
	bogus := chash.Leaf([]byte("bogus"))
	if _, err := VerifyRange(DefaultOrder, bogus, 0, 10, proof); err == nil {
		t.Fatal("want error for wrong root")
	}
}

func TestRangeProofTamperDetected(t *testing.T) {
	tr := NewDefault()
	for i := uint64(0); i < 50; i++ {
		mustInsert(t, tr, i, fmt.Sprintf("v%d", i))
	}
	root := mustRoot(t, tr)
	proof, err := tr.WitnessForRange(0, 10)
	if err != nil {
		t.Fatalf("WitnessForRange: %v", err)
	}
	for h, raw := range proof.nodes {
		raw[len(raw)-1] ^= 0x01
		proof.nodes[h] = raw
		break
	}
	if _, err := VerifyRange(DefaultOrder, root, 0, 10, proof); err == nil {
		t.Fatal("tampered proof must not verify")
	}
}

func TestStatelessInsert(t *testing.T) {
	// The enclave flow for index certification: witness the insert paths,
	// replay the inserts on a partial tree, and match the new root.
	tr, err := New(6)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint64(0); i < 500; i++ {
		mustInsert(t, tr, i*2, fmt.Sprintf("v%d", i))
	}
	oldRoot := mustRoot(t, tr)

	inserts := []uint64{1001, 77, 2000} // mix of middle and append
	w, err := tr.WitnessForInsert(inserts)
	if err != nil {
		t.Fatalf("WitnessForInsert: %v", err)
	}
	pt, err := NewPartial(6, oldRoot, w)
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	for _, v := range inserts {
		if err := pt.Insert(v, []byte(fmt.Sprintf("new-%d", v))); err != nil {
			t.Fatalf("partial Insert(%d): %v", v, err)
		}
	}
	gotRoot := mustRoot(t, pt)

	for _, v := range inserts {
		mustInsert(t, tr, v, fmt.Sprintf("new-%d", v))
	}
	if gotRoot != mustRoot(t, tr) {
		t.Fatal("stateless insert root disagrees with the real tree")
	}
}

func TestStatelessInsertIntoEmptyTree(t *testing.T) {
	pt, err := NewPartial(4, chash.Zero, NewWitness())
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	if err := pt.Insert(5, []byte("first")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	real, err := New(4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mustInsert(t, real, 5, "first")
	if mustRoot(t, pt) != mustRoot(t, real) {
		t.Fatal("empty-tree stateless insert mismatch")
	}
}

func TestPartialTreeRejectsUnwitnessedInsert(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint64(0); i < 200; i++ {
		mustInsert(t, tr, i*5, "x")
	}
	root := mustRoot(t, tr)
	w, err := tr.WitnessForInsert([]uint64{7})
	if err != nil {
		t.Fatalf("WitnessForInsert: %v", err)
	}
	pt, err := NewPartial(4, root, w)
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	if err := pt.Insert(900, []byte("far away")); !errors.Is(err, ErrMissingNode) {
		t.Fatalf("want ErrMissingNode, got %v", err)
	}
}

func TestWitnessMarshalRoundTrip(t *testing.T) {
	tr := NewDefault()
	for i := uint64(0); i < 100; i++ {
		mustInsert(t, tr, i, fmt.Sprintf("v%d", i))
	}
	root := mustRoot(t, tr)
	w, err := tr.WitnessForRange(10, 20)
	if err != nil {
		t.Fatalf("WitnessForRange: %v", err)
	}
	parsed, err := UnmarshalWitness(w.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalWitness: %v", err)
	}
	if parsed.Len() != w.Len() {
		t.Fatalf("Len = %d, want %d", parsed.Len(), w.Len())
	}
	got, err := VerifyRange(DefaultOrder, root, 10, 20, parsed)
	if err != nil {
		t.Fatalf("VerifyRange: %v", err)
	}
	if len(got) != 11 {
		t.Fatalf("got %d entries, want 11", len(got))
	}
	if w.EncodedSize() != len(w.Marshal()) {
		t.Fatalf("EncodedSize = %d, Marshal len = %d", w.EncodedSize(), len(w.Marshal()))
	}
}

func TestUnmarshalWitnessRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalWitness([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for garbage witness")
	}
}

func TestWitnessMerge(t *testing.T) {
	tr := NewDefault()
	for i := uint64(0); i < 100; i++ {
		mustInsert(t, tr, i, "x")
	}
	root := mustRoot(t, tr)
	w1, err := tr.WitnessForRange(0, 5)
	if err != nil {
		t.Fatalf("WitnessForRange: %v", err)
	}
	w2, err := tr.WitnessForRange(90, 95)
	if err != nil {
		t.Fatalf("WitnessForRange: %v", err)
	}
	w1.Merge(w2)
	if _, err := VerifyRange(DefaultOrder, root, 90, 95, w1); err != nil {
		t.Fatalf("merged witness should cover both ranges: %v", err)
	}
}

func TestStatelessInsertQuick(t *testing.T) {
	// Property: stateless inserts over a witness always reproduce the real
	// tree's root, for random tree contents and batch compositions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(14)
		tr, err := New(order)
		if err != nil {
			return false
		}
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			if err := tr.Insert(uint64(rng.Intn(1000)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				return false
			}
		}
		oldRoot, err := tr.Root()
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(8)
		batch := make([]uint64, k)
		for i := range batch {
			batch[i] = uint64(rng.Intn(1500))
		}
		w, err := tr.WitnessForInsert(batch)
		if err != nil {
			return false
		}
		pt, err := NewPartial(order, oldRoot, w)
		if err != nil {
			return false
		}
		for i, v := range batch {
			if err := pt.Insert(v, []byte(fmt.Sprintf("n%d", i))); err != nil {
				return false
			}
			if err := tr.Insert(v, []byte(fmt.Sprintf("n%d", i))); err != nil {
				return false
			}
		}
		ptRoot, err := pt.Root()
		if err != nil {
			return false
		}
		realRoot, err := tr.Root()
		if err != nil {
			return false
		}
		return ptRoot == realRoot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
