package smt

import (
	"fmt"
	"testing"

	"dcert/internal/chash"
)

// Golden vectors generated from the original string-path, lazily-cached
// implementation. They pin the packed-path rewrite — roots, empty-subtree
// defaults, and the multiproof wire bytes — to byte-identical output:
// certificates recursively sign these digests, so any drift would break
// every previously issued certificate chain.

func TestGoldenEmptyRoots(t *testing.T) {
	vectors := []struct {
		depth int
		want  string
	}{
		{1, "977c6d24ff2b851777af4dce0615e547112c6c0128a37338b3a1db9d055fff09"},
		{8, "7f35fb7188aa778bd61fe74ece25bc1b8b1a972f89e40f2ab2e513d94835ff0e"},
		{64, "2c2864ce7971f50248c54ed9f7dcd65c60a9aea845c95cd17cdf68bd4abeac65"},
		{256, "5827183e20bfaaf751d758db3b2db5aa8131147c0f505de04c112bc3613db778"},
	}
	for _, v := range vectors {
		tr, err := New(v.depth)
		if err != nil {
			t.Fatalf("New(%d): %v", v.depth, err)
		}
		if got := tr.Root().Hex(); got != v.want {
			t.Fatalf("empty root depth %d = %s, want %s", v.depth, got, v.want)
		}
	}
}

func goldenTree(t testing.TB) (*Tree, []Key) {
	t.Helper()
	tr, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = KeyFromString(fmt.Sprintf("golden-key-%d", i))
		tr.Put(keys[i], chash.Leaf([]byte(fmt.Sprintf("golden-val-%d", i))))
	}
	return tr, keys
}

func TestGoldenRootAndMultiproof(t *testing.T) {
	tr, keys := goldenTree(t)
	const wantRoot = "f0b59c7b612fd059b05b07a6fc5b735f4a3ed554a3ac21bda16b485318ddf2af"
	if got := tr.Root().Hex(); got != wantRoot {
		t.Fatalf("root = %s, want %s", got, wantRoot)
	}

	// The proof covers three present keys and one absent key; hashing the
	// marshaled bytes pins both the fill set and the deterministic wire
	// order (sorted '0'/'1' position strings).
	pk := []Key{keys[0], keys[3], keys[7], KeyFromString("golden-absent")}
	mp, err := tr.Prove(pk)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	const wantProof = "ae0da77458b8db52d551c2d457ef5d660ec51f9441f377ce01181b692fe3aef9"
	if got := chash.SumBytes(mp.Marshal()).Hex(); got != wantProof {
		t.Fatalf("proof bytes digest = %s, want %s", got, wantProof)
	}

	// And the proof still verifies + round-trips through the codec.
	vals := map[Key]chash.Hash{
		keys[0]:                        tr.Get(keys[0]),
		keys[3]:                        tr.Get(keys[3]),
		keys[7]:                        tr.Get(keys[7]),
		KeyFromString("golden-absent"): chash.Zero,
	}
	if err := mp.Verify(tr.Root(), vals); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rt, err := UnmarshalMultiproof(mp.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalMultiproof: %v", err)
	}
	if err := rt.Verify(tr.Root(), vals); err != nil {
		t.Fatalf("round-tripped Verify: %v", err)
	}
}
