package query

import (
	"bytes"
	"errors"
	"testing"

	"dcert/internal/workload"
)

// writtenKeys probes the KV workload's key space for keys that exist in
// state, returning up to max of them.
func writtenKeys(t *testing.T, r *rig, max int) []string {
	t.Helper()
	var keys []string
	for i := 0; i < 200 && len(keys) < max; i++ {
		probe := "ct/" + workload.ContractName(workload.KVStore, 0) + "/kv/user-key-" + itoa(i)
		v, err := r.sp.Node().State().Get([]byte(probe))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v != nil {
			keys = append(keys, probe)
		}
	}
	if len(keys) == 0 {
		t.Skip("no written keys found")
	}
	return keys
}

func TestBatchStateQueryRoundTrip(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 6, 15)
	tip := r.sp.Node().Tip()

	keys := writtenKeys(t, r, 6)
	// Mix in absent keys: the merged proof must prove absence too.
	keys = append(keys, "never-written-a", "never-written-b")

	res, err := r.sp.BatchStateQuery(keys)
	if err != nil {
		t.Fatalf("BatchStateQuery: %v", err)
	}
	if err := VerifyBatchState(&tip.Header, res); err != nil {
		t.Fatalf("VerifyBatchState: %v", err)
	}
	for i, k := range keys {
		present := i < len(keys)-2
		if present && res.Values[i] == nil {
			t.Fatalf("key %q: expected a present value", k)
		}
		if !present && res.Values[i] != nil {
			t.Fatalf("key %q: expected proven absence", k)
		}
	}

	// Wire round trip preserves verifiability.
	parsed, err := UnmarshalBatchStateResult(res.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBatchStateResult: %v", err)
	}
	if err := VerifyBatchState(&tip.Header, parsed); err != nil {
		t.Fatalf("VerifyBatchState after round trip: %v", err)
	}

	// The merged multiproof deduplicates shared upper nodes, so it is
	// smaller than K independent single-key proofs.
	sum := 0
	for _, k := range keys {
		sr, err := r.sp.StateQuery(k)
		if err != nil {
			t.Fatalf("StateQuery: %v", err)
		}
		sum += sr.EncodedSize()
	}
	if res.EncodedSize() >= sum {
		t.Fatalf("merged proof %dB not smaller than %dB of %d single proofs",
			res.EncodedSize(), sum, len(keys))
	}
}

func TestBatchStateVerifyRejectsTampering(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 5, 12)
	tip := r.sp.Node().Tip()
	keys := writtenKeys(t, r, 4)

	// Tampered value.
	res, err := r.sp.BatchStateQuery(keys)
	if err != nil {
		t.Fatalf("BatchStateQuery: %v", err)
	}
	res.Values[0] = []byte("forged")
	if err := VerifyBatchState(&tip.Header, res); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("tampered value: want ErrResultMismatch, got %v", err)
	}

	// A present value claimed absent.
	res, err = r.sp.BatchStateQuery(keys)
	if err != nil {
		t.Fatalf("BatchStateQuery: %v", err)
	}
	res.Values[0] = nil
	if err := VerifyBatchState(&tip.Header, res); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("hidden value: want ErrResultMismatch, got %v", err)
	}

	// Missing proof and malformed shape.
	res, err = r.sp.BatchStateQuery(keys)
	if err != nil {
		t.Fatalf("BatchStateQuery: %v", err)
	}
	res.Proof = nil
	if err := VerifyBatchState(&tip.Header, res); !errors.Is(err, ErrBadProof) {
		t.Fatalf("missing proof: want ErrBadProof, got %v", err)
	}
	res, err = r.sp.BatchStateQuery(keys)
	if err != nil {
		t.Fatalf("BatchStateQuery: %v", err)
	}
	res.Values = res.Values[:len(res.Values)-1]
	if err := VerifyBatchState(&tip.Header, res); !errors.Is(err, ErrBadProof) {
		t.Fatalf("misaligned values: want ErrBadProof, got %v", err)
	}
}

// A K=1 batch is the single-key query: same witness bytes, same value.
func TestBatchK1MatchesSingleKeyProof(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 4, 12)
	keys := writtenKeys(t, r, 1)

	single, err := r.sp.StateQuery(keys[0])
	if err != nil {
		t.Fatalf("StateQuery: %v", err)
	}
	batch, err := r.sp.BatchStateQuery(keys[:1])
	if err != nil {
		t.Fatalf("BatchStateQuery: %v", err)
	}
	if !bytes.Equal(single.Proof.Marshal(), batch.Proof.Marshal()) {
		t.Fatal("K=1 batch proof differs from the single-key proof bytes")
	}
	if !bytes.Equal(single.Value, batch.Values[0]) {
		t.Fatal("K=1 batch value differs from the single-key value")
	}
}

func TestBatchStateQueryLimits(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 2, 8)

	if _, err := r.sp.BatchStateQuery(nil); err == nil {
		t.Fatal("want error for empty batch")
	}
	big := make([]string, MaxBatchKeys+1)
	for i := range big {
		big[i] = itoa(i)
	}
	if _, err := r.sp.BatchStateQuery(big); err == nil {
		t.Fatal("want error for oversized batch")
	}
	if _, err := UnmarshalBatchStateResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for garbage batch result")
	}
}

func TestBatchRequestWireRoundTrip(t *testing.T) {
	req := NewBatchStateRequest([]string{"a", "b", "c"})
	parsed, err := UnmarshalRequest(req.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalRequest: %v", err)
	}
	if parsed.Kind != reqBatchState || len(parsed.Keys) != 3 || parsed.Keys[1] != "b" {
		t.Fatalf("round trip mismatch: %+v", parsed)
	}
}

func TestNetworkedBatchState(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	tip := r.sp.Node().Tip()
	ix, err := r.sp.Index("hist")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	// The historical index covers written state keys, so it supplies a
	// present key regardless of workload.
	keys := []string{anyIndexedKey(t, ix), "never-written"}
	res, err := req.BatchState(keys)
	if err != nil {
		t.Fatalf("BatchState: %v", err)
	}
	if err := VerifyBatchState(&tip.Header, res); err != nil {
		t.Fatalf("VerifyBatchState over the wire: %v", err)
	}
}
