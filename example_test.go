package dcert_test

import (
	"fmt"
	"log"

	"dcert"
)

// Example shows the minimal DCert flow: mine a block, certify it in the
// enclave, and validate the whole chain as a superlight client.
func Example() {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.KVStore,
		Contracts: 4,
		Accounts:  8,
		KeySpace:  20,
	})
	if err != nil {
		log.Fatal(err)
	}
	client := dep.NewSuperlightClient()

	for i := 0; i < 3; i++ {
		blk, cert, err := dep.MineAndCertify(10)
		if err != nil {
			log.Fatal(err)
		}
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			log.Fatal(err)
		}
	}
	hdr, _ := client.Latest()
	fmt.Printf("validated chain height %d with %d bytes of client state\n",
		hdr.Height, client.StorageSize())
	// Output: validated chain height 3 with 3040 bytes of client state
}

// ExampleVerifyHistorical shows a verified historical query: the client
// checks both integrity and completeness against an enclave-certified index
// root.
func ExampleVerifyHistorical() {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.KVStore,
		Contracts: 2,
		Accounts:  4,
		KeySpace:  5,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("hist", "ct/")
	}); err != nil {
		log.Fatal(err)
	}
	client := dep.NewSuperlightClient()
	for i := 0; i < 4; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(10, []string{"hist"})
		if err != nil {
			log.Fatal(err)
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			log.Fatal(err)
		}
		ix, err := dep.SP().Index("hist")
		if err != nil {
			log.Fatal(err)
		}
		root, err := ix.Root()
		if err != nil {
			log.Fatal(err)
		}
		if err := client.ValidateIndex("hist", &blk.Header, root, idxCerts[0]); err != nil {
			log.Fatal(err)
		}
	}

	root, _, err := client.IndexRoot("hist")
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.SP().HistoricalQuery("hist", "ct/unwritten-key", 0, 100)
	if err != nil {
		log.Fatal(err)
	}
	if err := dcert.VerifyHistorical(root, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %d versions of an unwritten key (proven absent)\n", len(res.Entries))
	// Output: verified: 0 versions of an unwritten key (proven absent)
}

// ExampleVerifyTx shows a verified transaction-inclusion read against a
// certified header.
func ExampleVerifyTx() {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.KVStore,
		Contracts: 2,
		Accounts:  4,
		KeySpace:  5,
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	client := dep.NewSuperlightClient()
	blk, cert, err := dep.MineAndCertify(5)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.ValidateChain(&blk.Header, cert); err != nil {
		log.Fatal(err)
	}

	res, err := dep.SP().TxQuery(blk.Hash(), 2)
	if err != nil {
		log.Fatal(err)
	}
	hdr, _ := client.Latest()
	if err := dcert.VerifyTx(hdr, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tx %d of block %d proven included\n", res.Index, hdr.Height)
	// Output: tx 2 of block 1 proven included
}
