// Command dcert-query demonstrates DCert's verifiable queries end to end:
// it builds a chain with hierarchically certified authenticated indexes,
// then answers historical and keyword queries whose results a superlight
// client verifies against enclave-certified index roots.
//
// Usage:
//
//	dcert-query [-blocks N] [-txs N] [-window N] [-keywords w1,w2] [-debug-addr host:port]
//	dcert-query -connect host:port [-state-key key]
//
// With -debug-addr the instrumentation plane (Ecall counters split block vs
// index, certification latency histograms, /healthz, pprof) is served over
// HTTP while the program runs.
//
// With -connect the program becomes a remote superlight client: it dials a
// dcert-node -listen server over the wire transport, fetches the node's
// trust anchors (trust-on-first-use for this demo — production clients pin
// them out of band), validates the latest certificate at constant cost,
// and runs a verifiable state query over the socket, checking the Merkle
// proof against the certified state root. -state-key overrides the queried
// key; by default the key of the tip block's last KVStore write is used, so
// the presence proof is exercised against live data.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dcert"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dcert-query: %v\n", err)
		os.Exit(1)
	}
}

// runRemote is the multi-process path: a superlight client over a real
// socket. Everything it trusts is verified — the certificate chain against
// the attested enclave key, and the query result against the certified
// state root — so the node across the wire could lie about anything and be
// caught.
func runRemote(addr, stateKey string) error {
	wc, err := dcert.DialWire(addr, dcert.WireClientConfig{Name: "dcert-query"})
	if err != nil {
		return err
	}
	defer wc.Close()

	client, err := dcert.NewRemoteSuperlightClient(wc)
	if err != nil {
		return err
	}
	bundle, err := dcert.RequestLatestBundle(wc)
	if err != nil {
		return err
	}
	if bundle == nil {
		return fmt.Errorf("node at %s has not certified any block yet", addr)
	}
	start := time.Now()
	if err := client.ValidateChain(bundle.Header, bundle.Cert); err != nil {
		return fmt.Errorf("certificate validation FAILED: %w", err)
	}
	fmt.Printf("connected to %s\n", addr)
	fmt.Printf("certified tip height %d VERIFIED in %v (client storage %d bytes)\n",
		bundle.Header.Height, time.Since(start).Round(time.Microsecond), client.StorageSize())

	// Default the queried key to the tip block's last KVStore write, so the
	// proof demonstrates presence against live data.
	if stateKey == "" {
		tip, err := dcert.RequestTipBlock(wc)
		if err != nil {
			return err
		}
		for i := len(tip.Txs) - 1; i >= 0; i-- {
			if tx := tip.Txs[i]; tx.Method == "set" && len(tx.Args) > 0 {
				stateKey = "ct/" + tx.Contract + "/kv/" + string(tx.Args[0])
				break
			}
		}
		if stateKey == "" {
			return fmt.Errorf("tip block has no KVStore write; pass -state-key")
		}
	}

	// RPC path: one-shot request/response over the wire's route table.
	hdr, _ := client.Latest()
	start = time.Now()
	resp, err := dcert.RequestQuery(wc, dcert.NewRemoteStateRequest(stateKey))
	if err != nil {
		return err
	}
	res, err := dcert.ParseStateResult(resp)
	if err != nil {
		return err
	}
	if err := dcert.VerifyState(hdr, res); err != nil {
		return fmt.Errorf("state verification FAILED: %w", err)
	}
	presence := "present"
	if res.Value == nil {
		presence = "proven absent"
	}
	fmt.Printf("state query %q (RPC path): %s, value %x, proof %d bytes, VERIFIED in %v\n",
		stateKey, presence, res.Value, res.EncodedSize(), time.Since(start).Round(time.Microsecond))

	// Topic path: the same query through the streaming pub/sub fabric —
	// the wire client is a drop-in network bus.
	req := dcert.NewQueryRequesterOver(wc, 5*time.Second)
	defer req.Close()
	start = time.Now()
	res2, err := req.State(stateKey)
	if err != nil {
		return err
	}
	if err := dcert.VerifyState(hdr, res2); err != nil {
		return fmt.Errorf("state verification (topic path) FAILED: %w", err)
	}
	fmt.Printf("state query %q (topic path): VERIFIED in %v\n", stateKey, time.Since(start).Round(time.Microsecond))
	return nil
}

func run() error {
	blocks := flag.Int("blocks", 20, "number of blocks to build")
	txs := flag.Int("txs", 30, "transactions per block")
	window := flag.Int("window", 10, "historical query window in blocks")
	keywords := flag.String("keywords", "deposit_check", "comma-separated conjunctive keywords")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/spans, /healthz, /debug/pprof on this address")
	connect := flag.String("connect", "", "act as a remote client of a dcert-node -listen server at this address")
	stateKey := flag.String("state-key", "", "state key to query remotely (default: the tip block's last KVStore write)")
	flag.Parse()

	if *connect != "" {
		return runRemote(*connect, *stateKey)
	}

	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   dcert.SmallBank,
		Contracts:  4,
		Accounts:   16,
		Difficulty: 4,
		KeySpace:   50,
	})
	if err != nil {
		return err
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("hist", "ct/")
	}); err != nil {
		return err
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewKeywordIndex("kw")
	}); err != nil {
		return err
	}
	if *debugAddr != "" {
		dep.EnableObservability(dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "dcert-query")))
		dbg, err := dep.StartDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint: %s/metrics\n", dbg.URL())
	}
	client := dep.NewSuperlightClient()
	names := []string{"hist", "kw"}

	fmt.Printf("building %d blocks with hierarchical index certification...\n", *blocks)
	for i := 0; i < *blocks; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(*txs, names)
		if err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			return err
		}
		for j, name := range names {
			ix, err := dep.SP().Index(name)
			if err != nil {
				return err
			}
			root, err := ix.Root()
			if err != nil {
				return err
			}
			if err := client.ValidateIndex(name, &blk.Header, root, idxCerts[j]); err != nil {
				return fmt.Errorf("index cert %s: %w", name, err)
			}
		}
	}
	tip, _ := client.Latest()
	fmt.Printf("chain height %d; client tracks 2 certified index roots\n\n", tip.Height)

	// Historical query: pick a SmallBank checking account that exists.
	histRoot, _, err := client.IndexRoot("hist")
	if err != nil {
		return err
	}
	key := "ct/SB-0000/checking/cust-1"
	lo := uint64(0)
	if uint64(*window) < tip.Height {
		lo = tip.Height - uint64(*window)
	}
	start := time.Now()
	hres, err := dep.SP().HistoricalQuery("hist", key, lo, tip.Height)
	if err != nil {
		return err
	}
	if err := dcert.VerifyHistorical(histRoot, hres); err != nil {
		return fmt.Errorf("historical verification FAILED: %w", err)
	}
	fmt.Printf("historical query %q in blocks [%d, %d]:\n", key, lo, tip.Height)
	fmt.Printf("  %d verified versions, proof %d bytes, %v total\n",
		len(hres.Entries), hres.Proof.EncodedSize(), time.Since(start).Round(time.Microsecond))
	for _, e := range hres.Entries {
		fmt.Printf("    block %4d: value %x\n", e.Version, e.Value)
	}

	// Conjunctive keyword query.
	kwRoot, _, err := client.IndexRoot("kw")
	if err != nil {
		return err
	}
	conj := strings.Split(*keywords, ",")
	start = time.Now()
	kres, err := dep.SP().KeywordQuery("kw", conj)
	if err != nil {
		return err
	}
	if err := dcert.VerifyKeyword(kwRoot, kres); err != nil {
		return fmt.Errorf("keyword verification FAILED: %w", err)
	}
	fmt.Printf("\nkeyword query %v:\n", conj)
	fmt.Printf("  %d verified matching txs, proof %d bytes, %v total\n",
		len(kres.Matches), kres.ProofSize(), time.Since(start).Round(time.Microsecond))
	for i, m := range kres.Matches {
		if i >= 5 {
			fmt.Printf("    ... and %d more\n", len(kres.Matches)-5)
			break
		}
		fmt.Printf("    block %4d tx %s\n", m.Version>>20, m.TxHash)
	}
	return nil
}
