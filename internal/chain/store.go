package chain

import (
	"fmt"
	"sync"

	"dcert/internal/chash"
)

// Store keeps blocks by hash and tracks the best tip under the longest-chain
// selection rule (ties broken by first arrival, as in Bitcoin).
//
// Store is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	blocks  map[chash.Hash]*Block
	byNum   map[uint64][]chash.Hash // all known blocks per height (forks)
	genesis chash.Hash
	best    chash.Hash
	bestNum uint64
}

// NewStore creates a store seeded with the genesis block.
func NewStore(genesis *Block) (*Store, error) {
	if genesis == nil || genesis.Header.Height != 0 {
		return nil, fmt.Errorf("%w: genesis must have height 0", ErrBadBlock)
	}
	gh := genesis.Hash()
	return &Store{
		blocks:  map[chash.Hash]*Block{gh: genesis},
		byNum:   map[uint64][]chash.Hash{0: {gh}},
		genesis: gh,
		best:    gh,
	}, nil
}

// Genesis returns the genesis block hash.
func (s *Store) Genesis() chash.Hash {
	return s.genesis
}

// Add inserts a block whose parent must already be known. It returns whether
// the block became the new best tip (longest chain rule).
func (s *Store) Add(b *Block) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	h := b.Hash()
	if _, ok := s.blocks[h]; ok {
		return false, nil
	}
	parent, ok := s.blocks[b.Header.PrevHash]
	if !ok {
		return false, fmt.Errorf("%w: %s at height %d", ErrUnknownParent, b.Header.PrevHash, b.Header.Height)
	}
	if b.Header.Height != parent.Header.Height+1 {
		return false, fmt.Errorf("%w: height %d after parent height %d", ErrBadBlock, b.Header.Height, parent.Header.Height)
	}
	s.blocks[h] = b
	s.byNum[b.Header.Height] = append(s.byNum[b.Header.Height], h)
	if b.Header.Height > s.bestNum {
		s.bestNum = b.Header.Height
		s.best = h
		return true, nil
	}
	return false, nil
}

// Get returns the block with the given hash.
func (s *Store) Get(h chash.Hash) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, h)
	}
	return b, nil
}

// Best returns the current best tip block.
func (s *Store) Best() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[s.best]
}

// BestHeight returns the height of the best tip.
func (s *Store) BestHeight() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bestNum
}

// AtHeight returns the canonical-chain block at the given height by walking
// back from the best tip.
func (s *Store) AtHeight(height uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height > s.bestNum {
		return nil, fmt.Errorf("%w: height %d beyond tip %d", ErrNotFound, height, s.bestNum)
	}
	cur := s.blocks[s.best]
	for cur.Header.Height > height {
		parent, ok := s.blocks[cur.Header.PrevHash]
		if !ok {
			return nil, fmt.Errorf("%w: broken chain at height %d", ErrNotFound, cur.Header.Height)
		}
		cur = parent
	}
	return cur, nil
}

// Len returns the number of stored blocks (including forks).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Headers returns the canonical chain's headers from genesis to the best
// tip, in order. It is what a traditional light client synchronizes. On a
// pruned store the walk stops at the pruning horizon and nil is returned:
// the full history is gone.
func (s *Store) Headers() []*Header {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Header, s.bestNum+1)
	cur := s.blocks[s.best]
	for {
		hdr := cur.Header
		out[hdr.Height] = &hdr
		if hdr.Height == 0 {
			break
		}
		next, ok := s.blocks[hdr.PrevHash]
		if !ok {
			return nil
		}
		cur = next
	}
	return out
}

// Prune discards block bodies more than keepLast blocks below the best tip,
// keeping the genesis block (the certification trust anchor). It returns the
// number of blocks dropped. Pruned stores can no longer serve full header
// syncs to traditional light clients — which is the point: a DCert CI only
// needs the recent tail, since superlight clients never ask for history.
func (s *Store) Prune(keepLast uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bestNum <= keepLast {
		return 0
	}
	cutoff := s.bestNum - keepLast
	dropped := 0
	for h, hashes := range s.byNum {
		if h == 0 || h >= cutoff {
			continue
		}
		for _, bh := range hashes {
			delete(s.blocks, bh)
			dropped++
		}
		delete(s.byNum, h)
	}
	return dropped
}
