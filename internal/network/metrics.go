package network

import (
	"sync"

	"dcert/internal/obs"
)

// Fabric instrumentation: per-topic counters for what the fault layer did to
// published messages. Counters are created lazily on a topic's first publish
// and cached, so the steady-state publish path pays one map lookup under a
// dedicated lock — the fabric stays uninstrumented (nil netObs, one branch)
// unless Instrument is called.

// netObs caches per-topic counter sets against a registry.
type netObs struct {
	reg *obs.Registry

	mu     sync.Mutex
	topics map[string]*topicCounters
}

type topicCounters struct {
	published   *obs.Counter
	delivered   *obs.Counter
	dropped     *obs.Counter
	partitioned *obs.Counter
	duplicated  *obs.Counter
	reordered   *obs.Counter
}

func (o *netObs) counters(topic string) *topicCounters {
	o.mu.Lock()
	defer o.mu.Unlock()
	tc := o.topics[topic]
	if tc == nil {
		tc = &topicCounters{
			published: o.reg.Counter("dcert_net_published_total",
				"Messages published per topic.", obs.L("topic", topic)),
			delivered: o.reg.Counter("dcert_net_delivered_total",
				"Delivery fan-outs per topic (duplicates counted).", obs.L("topic", topic)),
			dropped: o.reg.Counter("dcert_net_dropped_total",
				"Messages lost to fault-rule drops per topic.", obs.L("topic", topic)),
			partitioned: o.reg.Counter("dcert_net_partitioned_total",
				"Messages lost to topic partitions.", obs.L("topic", topic)),
			duplicated: o.reg.Counter("dcert_net_duplicated_total",
				"Messages duplicated by fault rules per topic.", obs.L("topic", topic)),
			reordered: o.reg.Counter("dcert_net_reordered_total",
				"Messages held back for reordering per topic.", obs.L("topic", topic)),
		}
		o.topics[topic] = tc
	}
	return tc
}

// record counts one publish outcome.
func (o *netObs) record(topic string, copies int, v verdict) {
	if o == nil {
		return
	}
	tc := o.counters(topic)
	tc.published.Inc()
	tc.delivered.Add(uint64(copies))
	if v.dropped {
		tc.dropped.Inc()
	}
	if v.partitioned {
		tc.partitioned.Inc()
	}
	if v.duplicated {
		tc.duplicated.Inc()
	}
	if v.reordered {
		tc.reordered.Inc()
	}
}

// Instrument attaches the fabric to a metrics registry: every subsequent
// publish counts its outcome per topic. A nil registry detaches.
func (n *Network) Instrument(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.obs = nil
		return
	}
	n.obs = &netObs{reg: reg, topics: make(map[string]*topicCounters)}
}
