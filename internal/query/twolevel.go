// Package query implements DCert's verifiable-query layer (§5): the query
// service provider (SP), the authenticated indexes it maintains, the
// integrity proofs it returns, and the client-side result verifier.
//
// The central structure is the two-level index of Fig. 5: an upper Merkle
// Patricia Trie maps an index key (account/state key, or keyword) to the
// root of a lower Merkle B⁺-tree holding that key's versioned entries. Both
// the historical-account index and the inverted keyword index are
// instantiations with different extraction logic. Each index implements
// core.IndexUpdater, so the certificate issuer's enclave can certify its
// root on every block (augmented or hierarchical scheme).
package query

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/core"
	"dcert/internal/mbtree"
	"dcert/internal/mpt"
)

// Package errors.
var (
	// ErrBadProof is returned when a query proof fails verification.
	ErrBadProof = errors.New("query: proof verification failed")
	// ErrResultMismatch is returned when the SP's claimed results disagree
	// with the verified ones.
	ErrResultMismatch = errors.New("query: results do not match proof")
	// ErrBadWitness is returned for malformed index-update witnesses.
	ErrBadWitness = errors.New("query: malformed update witness")
)

// LowerOrder is the fanout of every lower-level Merkle B⁺-tree.
const LowerOrder = mbtree.DefaultOrder

// Insertion is one index update extracted from a block: entry (Version,
// Value) appended under the index key.
type Insertion struct {
	// Key selects the lower tree (account key or keyword).
	Key string
	// Version orders entries within the lower tree.
	Version uint64
	// Value is the entry payload.
	Value []byte
}

// Extractor derives the index updates implied by a block and its verified
// state write set. It must be deterministic: the same function runs inside
// the CI's enclave during certification. Implementations return insertions
// sorted by (Key, Version).
type Extractor func(blk *chain.Block, writes map[string][]byte) []Insertion

// sortInsertions canonically orders insertions.
func sortInsertions(ins []Insertion) {
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].Key != ins[j].Key {
			return ins[i].Key < ins[j].Key
		}
		return ins[i].Version < ins[j].Version
	})
}

// TwoLevel is the SP-side two-level authenticated index.
//
// TwoLevel is not safe for concurrent use.
type TwoLevel struct {
	name    string
	extract Extractor
	upper   *mpt.Trie
	lowers  map[string]*mbtree.Tree
}

var _ core.IndexUpdater = (*TwoLevel)(nil)

// NewTwoLevel creates an empty two-level index with the given update
// extraction logic.
func NewTwoLevel(name string, extract Extractor) (*TwoLevel, error) {
	if name == "" {
		return nil, fmt.Errorf("query: empty index name")
	}
	if extract == nil {
		return nil, fmt.Errorf("query: nil extractor")
	}
	return &TwoLevel{
		name:    name,
		extract: extract,
		upper:   mpt.New(),
		lowers:  make(map[string]*mbtree.Tree),
	}, nil
}

// Name implements core.IndexUpdater.
func (ix *TwoLevel) Name() string {
	return ix.name
}

// Root returns the index commitment H_idx (the upper trie root).
func (ix *TwoLevel) Root() (chash.Hash, error) {
	return ix.upper.Hash()
}

// Apply updates the real index with a block's insertions (SP side).
func (ix *TwoLevel) Apply(blk *chain.Block, writes map[string][]byte) error {
	for _, in := range ix.extract(blk, writes) {
		lower, ok := ix.lowers[in.Key]
		if !ok {
			var err error
			if lower, err = mbtree.New(LowerOrder); err != nil {
				return err
			}
			ix.lowers[in.Key] = lower
		}
		if err := lower.Insert(in.Version, in.Value); err != nil {
			return fmt.Errorf("query: apply %q@%d: %w", in.Key, in.Version, err)
		}
		root, err := lower.Root()
		if err != nil {
			return err
		}
		if err := ix.upper.Put([]byte(in.Key), root.Bytes()); err != nil {
			return fmt.Errorf("query: apply upper %q: %w", in.Key, err)
		}
	}
	return nil
}

// UpdateWitness builds π_idx for replaying a block's insertions on the
// CURRENT (pre-block) index state: the upper paths of every touched key and
// the lower insertion paths of every touched version.
func (ix *TwoLevel) UpdateWitness(blk *chain.Block, writes map[string][]byte) ([]byte, error) {
	ins := ix.extract(blk, writes)
	keys := make([][]byte, 0, len(ins))
	versionsByKey := make(map[string][]uint64)
	for _, in := range ins {
		if _, ok := versionsByKey[in.Key]; !ok {
			keys = append(keys, []byte(in.Key))
		}
		versionsByKey[in.Key] = append(versionsByKey[in.Key], in.Version)
	}

	var upperW *mpt.Witness
	if len(keys) == 0 {
		upperW = mpt.NewWitness()
	} else {
		var err error
		if upperW, err = ix.upper.WitnessForKeys(keys); err != nil {
			return nil, fmt.Errorf("query: upper witness: %w", err)
		}
	}

	lowerNames := make([]string, 0, len(versionsByKey))
	for k := range versionsByKey {
		lowerNames = append(lowerNames, k)
	}
	sort.Strings(lowerNames)

	e := chash.NewEncoder(1024)
	e.PutBytes(upperW.Marshal())
	e.PutUint32(uint32(len(lowerNames)))
	for _, k := range lowerNames {
		e.PutString(k)
		lower, ok := ix.lowers[k]
		if !ok {
			// Key is new: the lower tree starts empty, no witness needed.
			e.PutBytes(mbtree.NewWitness().Marshal())
			continue
		}
		w, err := lower.WitnessForInsert(versionsByKey[k])
		if err != nil {
			return nil, fmt.Errorf("query: lower witness %q: %w", k, err)
		}
		e.PutBytes(w.Marshal())
	}
	return e.Bytes(), nil
}

// decodeUpdateWitness parses the combined witness.
func decodeUpdateWitness(raw []byte) (*mpt.Witness, map[string]*mbtree.Witness, error) {
	d := chash.NewDecoder(raw)
	upperRaw, err := d.ReadBytes()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadWitness, err)
	}
	upperW, err := mpt.UnmarshalWitness(upperRaw)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadWitness, err)
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadWitness, err)
	}
	if n > 1<<20 {
		return nil, nil, fmt.Errorf("%w: %d lower witnesses", ErrBadWitness, n)
	}
	lowers := make(map[string]*mbtree.Witness, n)
	for i := uint32(0); i < n; i++ {
		k, err := d.ReadString()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadWitness, err)
		}
		wRaw, err := d.ReadBytes()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadWitness, err)
		}
		w, err := mbtree.UnmarshalWitness(wRaw)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadWitness, err)
		}
		lowers[k] = w
	}
	if err := d.Finish(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadWitness, err)
	}
	return upperW, lowers, nil
}

// Replay implements core.IndexUpdater: it statelessly re-derives the
// post-block index root from the pre-block root and the witness, running the
// same Extractor the SP used (lines 8-10 of Alg. 4: get_index_write_data,
// verify_mht, update). This method is part of the trusted program.
func (ix *TwoLevel) Replay(prevRoot chash.Hash, witness []byte, blk *chain.Block, writes map[string][]byte) (chash.Hash, error) {
	upperW, lowerWs, err := decodeUpdateWitness(witness)
	if err != nil {
		return chash.Zero, err
	}
	upper := mpt.NewPartial(prevRoot, upperW)

	partialLowers := make(map[string]*mbtree.Tree)
	for _, in := range ix.extract(blk, writes) {
		lower, ok := partialLowers[in.Key]
		if !ok {
			rootBytes, err := upper.Get([]byte(in.Key))
			if err != nil {
				return chash.Zero, fmt.Errorf("%w: upper get %q: %v", ErrBadWitness, in.Key, err)
			}
			lowerRoot := chash.Zero
			if rootBytes != nil {
				if lowerRoot, err = chash.FromBytes(rootBytes); err != nil {
					return chash.Zero, fmt.Errorf("%w: lower root %q: %v", ErrBadWitness, in.Key, err)
				}
			}
			lw, ok := lowerWs[in.Key]
			if !ok {
				lw = mbtree.NewWitness()
			}
			if lower, err = mbtree.NewPartial(LowerOrder, lowerRoot, lw); err != nil {
				return chash.Zero, err
			}
			partialLowers[in.Key] = lower
		}
		if err := lower.Insert(in.Version, in.Value); err != nil {
			return chash.Zero, fmt.Errorf("%w: lower insert %q@%d: %v", ErrBadWitness, in.Key, in.Version, err)
		}
	}
	for k, lower := range partialLowers {
		root, err := lower.Root()
		if err != nil {
			return chash.Zero, err
		}
		if err := upper.Put([]byte(k), root.Bytes()); err != nil {
			return chash.Zero, fmt.Errorf("%w: upper put %q: %v", ErrBadWitness, k, err)
		}
	}
	newRoot, err := upper.Hash()
	if err != nil {
		return chash.Zero, fmt.Errorf("%w: upper hash: %v", ErrBadWitness, err)
	}
	return newRoot, nil
}

// RangeProof is the integrity proof for a two-level range query: the upper
// path authenticating the lower root, plus the lower range scan witness.
type RangeProof struct {
	// Upper authenticates Key → lower root under the certified index root.
	Upper *mpt.Witness
	// Lower authenticates the complete range scan (nil when Key is absent).
	Lower *mbtree.Witness
}

// EncodedSize returns the proof size in bytes (Fig. 11b metric).
func (p *RangeProof) EncodedSize() int {
	size := p.Upper.EncodedSize()
	if p.Lower != nil {
		size += p.Lower.EncodedSize()
	}
	return size
}

// QueryRange answers a versioned range query over one key with an integrity
// and completeness proof (SP side, §5.3).
func (ix *TwoLevel) QueryRange(key string, lo, hi uint64) ([]mbtree.Entry, *RangeProof, error) {
	upperW, err := ix.upper.Prove([]byte(key))
	if err != nil {
		return nil, nil, fmt.Errorf("query: upper proof: %w", err)
	}
	lower, ok := ix.lowers[key]
	if !ok {
		// Proven absence of the key: empty result, upper proof suffices.
		return nil, &RangeProof{Upper: upperW}, nil
	}
	entries, err := lower.Range(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	lowerW, err := lower.WitnessForRange(lo, hi)
	if err != nil {
		return nil, nil, fmt.Errorf("query: lower proof: %w", err)
	}
	return entries, &RangeProof{Upper: upperW, Lower: lowerW}, nil
}

// VerifyRange validates a range-query result against the certified index
// root (client side, §5.3): the upper proof authenticates the lower root,
// the lower proof re-runs the complete range scan, and the result must match
// the SP's claim exactly.
func VerifyRange(indexRoot chash.Hash, key string, lo, hi uint64, claimed []mbtree.Entry, proof *RangeProof) error {
	if proof == nil || proof.Upper == nil {
		return fmt.Errorf("%w: missing proof", ErrBadProof)
	}
	rootBytes, err := mpt.VerifyProof(indexRoot, []byte(key), proof.Upper)
	if err != nil {
		return fmt.Errorf("%w: upper: %v", ErrBadProof, err)
	}
	if rootBytes == nil {
		// Key proven absent: the only valid claim is the empty result.
		if len(claimed) != 0 {
			return fmt.Errorf("%w: results claimed for absent key", ErrResultMismatch)
		}
		return nil
	}
	lowerRoot, err := chash.FromBytes(rootBytes)
	if err != nil {
		return fmt.Errorf("%w: lower root: %v", ErrBadProof, err)
	}
	if proof.Lower == nil {
		return fmt.Errorf("%w: missing lower proof", ErrBadProof)
	}
	verified, err := mbtree.VerifyRange(LowerOrder, lowerRoot, lo, hi, proof.Lower)
	if err != nil {
		return fmt.Errorf("%w: lower: %v", ErrBadProof, err)
	}
	if len(verified) != len(claimed) {
		return fmt.Errorf("%w: %d claimed, %d proven", ErrResultMismatch, len(claimed), len(verified))
	}
	for i := range verified {
		if verified[i].Version != claimed[i].Version || !bytes.Equal(verified[i].Value, claimed[i].Value) {
			return fmt.Errorf("%w: entry %d", ErrResultMismatch, i)
		}
	}
	return nil
}
