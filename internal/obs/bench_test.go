package obs

import (
	"testing"
	"time"
)

// Hot-path cost of the instrumentation primitives. The acceptance budget
// for the instrumented pipeline is ≤1 alloc/op per stage, which these
// primitives must underwrite with 0 allocs/op each (EXPERIMENTS.md records
// a reference run).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveDuration(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(42 * time.Microsecond)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench.op", 0)
		sp.End()
	}
}

func BenchmarkSpanStartEndNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench.op", 0)
		sp.End()
	}
}

func BenchmarkLoggerBelowThreshold(b *testing.B) {
	lg := NewLogger(nilWriter{}, LevelError)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Debug("dropped")
	}
}

type nilWriter struct{}

func (nilWriter) Write(p []byte) (int, error) { return len(p), nil }
