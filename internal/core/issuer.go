package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/enclave"
	"dcert/internal/node"
	"dcert/internal/statedb"
)

// Issuer is the SGX-enabled Certificate Issuer (CI) of §3.2: a full node
// equipped with an enclave that certifies every block (Alg. 1) and,
// optionally, authenticated indexes (Alg. 4 / Alg. 5).
//
// Issuer is not safe for concurrent use: blocks are certified strictly in
// chain order.
type Issuer struct {
	node   *node.FullNode
	encl   *enclave.Enclave
	prog   *TrustedProgram
	report *attest.Report

	// pipelining guards against two concurrent Pipelines on one issuer.
	pipelining atomic.Bool

	// met holds the instrumentation hooks (all no-ops until Instrument).
	met issuerObs

	mu             sync.RWMutex
	lastCertAt     time.Time
	lastCert       *Certificate
	certs          map[chash.Hash]*Certificate            // block hash → block cert
	indexCerts     map[string]map[chash.Hash]*Certificate // index → block hash → cert
	indexRoots     map[string]chash.Hash                  // index → last certified root
	lastIndexBlock map[string]chash.Hash                  // index → block hash of last cert
	lastSegHeaders []*chain.Header                        // headers under lastCert's digest
	segs           []*SegmentCert                         // ordered certified-segment history
}

// CostBreakdown reports where one certificate construction spent its time,
// matching the Fig. 8 decomposition.
type CostBreakdown struct {
	// OutsideExec is the untrusted pre-processing time: transaction
	// execution and read/write-set computation (comp_data_set).
	OutsideExec float64
	// OutsideProof is the untrusted Merkle-proof generation time
	// (get_update_proof).
	OutsideProof float64
	// InsideExec is the real execution time of trusted code.
	InsideExec float64
	// InsideOverhead is the simulated SGX overhead (transitions, copies,
	// compute factor, paging).
	InsideOverhead float64
}

// Total is the end-to-end construction time in seconds.
func (c CostBreakdown) Total() float64 {
	return c.OutsideExec + c.OutsideProof + c.InsideExec + c.InsideOverhead
}

// NewIssuer initializes a CI: the trusted program is loaded into an enclave
// on the given platform, generates its sealed key pair, and obtains the
// attestation report rep from the authority (§3.3 initialization).
func NewIssuer(n *node.FullNode, authority *attest.Authority, platform *attest.Platform, cost enclave.CostModel) (*Issuer, error) {
	return newIssuer(n, authority, platform, cost, nil)
}

// NewIssuerFromSeed is NewIssuer with a deterministically derived sealed
// enclave key, for equivalence testing: two issuers built from the same seed
// (on the same seeded platform/authority) emit byte-identical certificates.
func NewIssuerFromSeed(n *node.FullNode, authority *attest.Authority, platform *attest.Platform, cost enclave.CostModel, seed []byte) (*Issuer, error) {
	if len(seed) == 0 {
		return nil, fmt.Errorf("core: issuer seed must be non-empty")
	}
	return newIssuer(n, authority, platform, cost, seed)
}

func newIssuer(n *node.FullNode, authority *attest.Authority, platform *attest.Platform, cost enclave.CostModel, seed []byte) (*Issuer, error) {
	genesis, err := n.Store().Get(n.Store().Genesis())
	if err != nil {
		return nil, fmt.Errorf("core: issuer genesis: %w", err)
	}
	prog := NewTrustedProgram(genesis.Hash(), authority.PublicKey(), n.Params(), n.Registry())
	var encl *enclave.Enclave
	if seed != nil {
		encl, err = enclave.NewFromSeed(prog.ID(), platform, cost, seed)
	} else {
		encl, err = enclave.New(prog.ID(), platform, cost)
	}
	if err != nil {
		return nil, fmt.Errorf("core: issuer enclave: %w", err)
	}
	quote, err := encl.Quote()
	if err != nil {
		return nil, fmt.Errorf("core: issuer quote: %w", err)
	}
	report, err := authority.Attest(quote)
	if err != nil {
		return nil, fmt.Errorf("core: issuer attestation: %w", err)
	}
	return &Issuer{
		node:           n,
		encl:           encl,
		prog:           prog,
		report:         report,
		certs:          make(map[chash.Hash]*Certificate),
		indexCerts:     make(map[string]map[chash.Hash]*Certificate),
		indexRoots:     make(map[string]chash.Hash),
		lastIndexBlock: make(map[string]chash.Hash),
	}, nil
}

// Node exposes the CI's full-node core.
func (ci *Issuer) Node() *node.FullNode {
	return ci.node
}

// Enclave exposes the CI's enclave (for cost accounting in benchmarks).
func (ci *Issuer) Enclave() *enclave.Enclave {
	return ci.encl
}

// Program exposes the trusted program (to register index updaters before
// certification starts).
func (ci *Issuer) Program() *TrustedProgram {
	return ci.prog
}

// Report returns the CI's attestation report.
func (ci *Issuer) Report() *attest.Report {
	return ci.report
}

// Measurement returns the CI enclave's measurement, which superlight
// clients pin.
func (ci *Issuer) Measurement() chash.Hash {
	return ci.encl.Measurement()
}

// CertFor returns the block certificate for a block hash.
func (ci *Issuer) CertFor(blockHash chash.Hash) (*Certificate, bool) {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	c, ok := ci.certs[blockHash]
	return c, ok
}

// IndexCertFor returns the index certificate for (index, block hash).
func (ci *Issuer) IndexCertFor(index string, blockHash chash.Hash) (*Certificate, bool) {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	c, ok := ci.indexCerts[index][blockHash]
	return c, ok
}

// LatestCert returns the newest block certificate (nil before the first
// certified block).
func (ci *Issuer) LatestCert() *Certificate {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.lastCert
}

// certifiedTip atomically snapshots the ⟨tip block, tip certificate⟩ pair.
// Reading the two separately (the pre-pipeline code did) races against a
// concurrent adopt: the tip can advance between the reads, pairing block i
// with cert i-1 — which corrupts checkpoints and makes the recursive Ecall
// verify the wrong predecessor. All readers that need a consistent pair go
// through here; adopt publishes both under the same lock.
func (ci *Issuer) certifiedTip() (*chain.Block, *Certificate) {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.node.Tip(), ci.lastCert
}

// newCert assembles a certificate from the enclave's outputs (Alg. 1
// lines 5-7).
func (ci *Issuer) newCert(digest chash.Hash, sig []byte) *Certificate {
	return &Certificate{
		PubKey: ci.encl.PublicKey().Marshal(),
		Report: ci.report,
		Digest: digest,
		Sig:    sig,
	}
}

// prepare runs the untrusted pre-processing of Alg. 1 lines 2-3 and returns
// the update proof plus the block's write set.
func (ci *Issuer) prepare(blk *chain.Block, bd *CostBreakdown) (*statedb.UpdateProof, *statedb.ExecResult, error) {
	execTimer := startTimer()
	res, err := ci.node.State().ExecuteBlock(ci.node.Registry(), blk.Txs)
	if err != nil {
		return nil, nil, fmt.Errorf("core: comp_data_set: %w", err)
	}
	bd.OutsideExec += execTimer()

	proofTimer := startTimer()
	proof, err := ci.node.State().UpdateProofFor(res)
	if err != nil {
		return nil, nil, fmt.Errorf("core: get_update_proof: %w", err)
	}
	bd.OutsideProof += proofTimer()
	return proof, res, nil
}

// ecallInputSize estimates the bytes marshalled through the enclave
// boundary for a block-certification Ecall.
func ecallInputSize(prev, blk *chain.Block, prevCert *Certificate, proof *statedb.UpdateProof) int {
	size := len(prev.Header.Marshal()) + len(blk.Marshal()) + proof.EncodedSize()
	if prevCert != nil {
		size += prevCert.EncodedSize()
	}
	return size
}

// ProcessBlock runs Alg. 1 (gen_cert) for a block extending the CI's tip:
// untrusted pre-processing, one Ecall for signature generation, certificate
// assembly — then advances the CI's own full-node replica. The returned
// breakdown feeds Figs. 8-9.
func (ci *Issuer) ProcessBlock(blk *chain.Block) (*Certificate, CostBreakdown, error) {
	var bd CostBreakdown
	certifyStart := time.Now()
	prev, prevCert := ci.certifiedTip()

	proof, res, err := ci.prepare(blk, &bd)
	if err != nil {
		return nil, bd, err
	}

	// Alg. 1 line 4: enter the enclave.
	sig, err := ci.ecallSigGen(prev, prevCert, blk, proof, &bd)
	if err != nil {
		return nil, bd, err
	}

	// Alg. 1 lines 5-7: assemble cert_i, then advance the CI's replica (it
	// is a full node; the enclave just established the block's validity).
	cert := ci.newCert(BlockDigest(&blk.Header), sig)
	if _, err := ci.node.State().Commit(res.WriteSet); err != nil {
		return nil, bd, fmt.Errorf("core: advance state: %w", err)
	}
	if err := ci.adopt(blk, cert); err != nil {
		return nil, bd, err
	}
	ci.met.certifySec.Observe(time.Since(certifyStart).Seconds())
	return cert, bd, nil
}

// ecallSigGen runs the single block-certification Ecall, accounting its cost.
//
// When the certified tip is covered by a multi-block segment certificate (a
// restart resumed from a segment checkpoint, or a per-block run follows a
// segmented one), the recursion base must be verified over the segment digest,
// not BlockDigest(prev) — so the call routes through the segment-aware trusted
// entry with a one-block segment. SegmentDigest of one header IS BlockDigest,
// so the signature — and the certificate built from it — is byte-identical to
// the plain path.
func (ci *Issuer) ecallSigGen(prev *chain.Block, prevCert *Certificate, blk *chain.Block, proof *statedb.UpdateProof, bd *CostBreakdown) ([]byte, error) {
	prevHeaders := ci.lastSegmentHeaders()
	segBase := len(prevHeaders) > 1 && prevHeaders[len(prevHeaders)-1].Hash() == prev.Hash()
	size := ecallInputSize(prev, blk, prevCert, proof)
	if segBase {
		for _, h := range prevHeaders {
			size += h.EncodedSize()
		}
	}
	var sig []byte
	before := ci.encl.Stats()
	err := ci.encl.Ecall(size, func(ctx *enclave.Context) error {
		var err error
		if segBase {
			sig, err = ci.prog.EcallSegmentSigGen(ctx, prev, prevHeaders, prevCert, []*chain.Block{blk}, []*statedb.UpdateProof{proof})
		} else {
			sig, err = ci.prog.EcallSigGen(ctx, prev, prevCert, blk, proof)
		}
		return err
	})
	after := ci.encl.Stats()
	bd.InsideExec += (after.ExecTime - before.ExecTime).Seconds()
	bd.InsideOverhead += (after.OverheadTime - before.OverheadTime).Seconds()
	ci.met.ecallsBlock.Inc()
	ci.met.enclaveBlockSec.Observe((after.InsideTime() - before.InsideTime()).Seconds())
	if err != nil {
		return nil, fmt.Errorf("core: ecall_sig_gen: %w", err)
	}
	return sig, nil
}

// adopt appends a certified block to the store and publishes its certificate
// as one atomic transition, so concurrent readers (Checkpoint, LatestBundle,
// certifiedTip) can never observe a new tip paired with a stale certificate.
// The caller has already committed the block's state writes.
func (ci *Issuer) adopt(blk *chain.Block, cert *Certificate) error {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if _, err := ci.node.Store().Add(blk); err != nil {
		return fmt.Errorf("core: advance chain: %w", err)
	}
	ci.certs[blk.Hash()] = cert
	ci.lastCert = cert
	ci.lastCertAt = time.Now()
	ci.met.blocksCertified.Inc()
	// A single-block certificate IS a one-block segment (SegmentDigest of one
	// header == BlockDigest), so the segment serving history stays uniform
	// across both certification paths.
	ci.recordSegmentLocked([]*chain.Header{&blk.Header}, cert)
	return nil
}
