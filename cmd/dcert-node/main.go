// Command dcert-node runs a complete simulated DCert network — miner,
// SGX-enabled certificate issuer, query service provider, and a superlight
// client — and streams the certification workflow of Fig. 2 to stdout:
// blocks are mined, certified in the enclave, broadcast, and validated by
// the superlight client at constant cost.
//
// Usage:
//
//	dcert-node [-blocks N] [-txs N] [-workload DN|CPU|IO|KV|SB] [-tee sgx|trustzone|multizone|sev] [-interval d]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dcert"
	"dcert/internal/enclave"
	"dcert/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dcert-node: %v\n", err)
		os.Exit(1)
	}
}

func parseWorkload(s string) (dcert.Workload, error) {
	for _, k := range workload.AllKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q (want DN|CPU|IO|KV|SB)", s)
}

func run() error {
	blocks := flag.Int("blocks", 10, "number of blocks to mine and certify")
	txs := flag.Int("txs", 50, "transactions per block")
	workloadFlag := flag.String("workload", "KV", "Blockbench workload: DN, CPU, IO, KV, SB")
	interval := flag.Duration("interval", 0, "pause between blocks (simulated block interval)")
	teeFlag := flag.String("tee", "sgx", "TEE vendor profile: sgx, trustzone, multizone, sev")
	flag.Parse()

	kind, err := parseWorkload(*workloadFlag)
	if err != nil {
		return err
	}
	vendor, err := enclave.ParseVendor(*teeFlag)
	if err != nil {
		return err
	}

	fmt.Printf("starting DCert network: workload=%s blocks=%d txs/block=%d tee=%s\n", kind, *blocks, *txs, vendor)
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    kind,
		Contracts:   20,
		Accounts:    32,
		Difficulty:  8,
		EnclaveCost: enclave.CostModelFor(vendor),
		KeySpace:    1000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  CI enclave measurement: %s\n", dep.Issuer().Measurement())
	fmt.Printf("  attestation report:     %d bytes (platform %s)\n",
		dep.Issuer().Report().EncodedSize(), dep.Issuer().Report().PlatformID)

	client := dep.NewSuperlightClient()
	for i := 1; i <= *blocks; i++ {
		blk, cert, err := dep.MineAndCertify(*txs)
		if err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		start := time.Now()
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			return fmt.Errorf("client validation %d: %w", i, err)
		}
		validate := time.Since(start)
		fmt.Printf("block %4d  hash=%s  txs=%d  cert=%dB  client-validate=%v  client-storage=%dB\n",
			blk.Header.Height, blk.Hash(), len(blk.Txs), cert.EncodedSize(),
			validate.Round(time.Microsecond), client.StorageSize())
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}

	stats := dep.Issuer().Enclave().Stats()
	fmt.Printf("\nenclave: %d ecalls, %.1f MB copied in, exec=%v overhead=%v\n",
		stats.Ecalls, float64(stats.BytesIn)/(1<<20),
		stats.ExecTime.Round(time.Millisecond), stats.OverheadTime.Round(time.Millisecond))
	hdr, _ := client.Latest()
	fmt.Printf("superlight client final state: height=%d storage=%d bytes (constant)\n",
		hdr.Height, client.StorageSize())
	return nil
}
