package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"dcert/internal/storage/vfs"
)

// Snapshots are single-shot durable files (issuer checkpoints, state
// images) written with the classic atomic-replace discipline: write to a
// temp path, fsync, close, rename over the target. A reader therefore sees
// either the old complete snapshot or the new complete snapshot, never a
// partial write. A CRC32C header catches bit rot and torn tmp files that a
// power cut promoted anyway.
//
// Layout (big-endian): [4B magic][4B CRC32C of payload][8B payload len][payload]

// snapMagic marks a snapshot file.
const snapMagic = 0x44435334 // "DCS4"

// snapHeaderSize is the snapshot header length.
const snapHeaderSize = 16

// writeSnapshot atomically replaces path with a CRC-framed payload.
func writeSnapshot(fs vfs.FS, path string, payload []byte) error {
	tmp := path + ".tmp"
	buf := make([]byte, snapHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], snapMagic)
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	copy(buf[snapHeaderSize:], payload)

	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: snapshot %s: %w", path, err)
	}
	_, err = f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: snapshot %s: %w", path, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: snapshot %s: %w", path, err)
	}
	return nil
}

// readSnapshot loads and verifies a snapshot. A missing file returns
// os.ErrNotExist; a structurally damaged one returns ErrCorrupt (the
// caller falls back to slower recovery, it does not fail the open).
func readSnapshot(fs vfs.FS, path string) ([]byte, error) {
	if !vfs.Exists(fs, path) {
		return nil, os.ErrNotExist
	}
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return nil, fmt.Errorf("storage: snapshot %s: %w", path, err)
	}
	if len(raw) < snapHeaderSize {
		return nil, fmt.Errorf("%w: snapshot %s truncated header", ErrCorrupt, path)
	}
	if binary.BigEndian.Uint32(raw[0:4]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot %s bad magic", ErrCorrupt, path)
	}
	plen := binary.BigEndian.Uint64(raw[8:16])
	if plen > maxRecord || int(plen) != len(raw)-snapHeaderSize {
		return nil, fmt.Errorf("%w: snapshot %s truncated payload", ErrCorrupt, path)
	}
	payload := raw[snapHeaderSize:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(raw[4:8]) {
		return nil, fmt.Errorf("%w: snapshot %s checksum", ErrCorrupt, path)
	}
	return payload, nil
}
