// Package smt implements a fixed-depth sparse Merkle tree over bit-string
// keys, the structure shown in Fig. 4 of the DCert paper. It provides the two
// trusted primitives the in-enclave program relies on:
//
//   - verify_mht(root, π, {kv}): check a multiproof for a set of keys (reads
//     or write neighbourhoods) against a committed root, and
//   - update(π, {w}): recompute the root after replacing the proven leaves
//     with new values, using only the proof — no access to the full tree.
//
// Empty subtrees hash to per-level default digests, so absence of a key is
// provable with the same multiproof mechanism.
package smt

import (
	"errors"
	"fmt"
	"sort"

	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrBadDepth is returned for tree depths outside [1, MaxDepth].
	ErrBadDepth = errors.New("smt: depth out of range")
	// ErrBadProof is returned when a multiproof fails verification.
	ErrBadProof = errors.New("smt: proof verification failed")
	// ErrKeyMismatch is returned when the key set given to a proof operation
	// differs from the proof's key set.
	ErrKeyMismatch = errors.New("smt: key set does not match proof")
)

// MaxDepth is the deepest supported tree (one bit per level of a digest).
const MaxDepth = 8 * chash.Size

// Key addresses a leaf: the first Tree.Depth() bits (MSB-first) select the
// path from the root.
type Key [chash.Size]byte

// KeyFromBytes derives a key by hashing arbitrary bytes, spreading keys
// uniformly across the address space.
func KeyFromBytes(b []byte) Key {
	return Key(chash.Sum(chash.DomainState, b))
}

// KeyFromString derives a key from a string identifier.
func KeyFromString(s string) Key {
	return KeyFromBytes([]byte(s))
}

// Bit returns bit i of the key, MSB-first.
func (k Key) Bit(i int) byte {
	return (k[i/8] >> (7 - i%8)) & 1
}

// Path returns the first depth bits of the key as a packed node-position
// path — the identifier proofs use for the key's leaf slot.
func (k Key) Path(depth int) Path {
	p := Path{n: uint16(depth)}
	whole := depth / 8
	copy(p.bits[:whole], k[:whole])
	for i := whole * 8; i < depth; i++ {
		if k.Bit(i) != 0 {
			p.bits[i/8] |= 1 << (7 - i%8)
		}
	}
	return p
}

// defaultAtHeight[h] is the digest of an empty subtree of height h (h = 0 is
// an empty leaf). The digest of an empty subtree depends only on its height,
// so one chain serves every tree depth: a depth-D tree's default at level l
// is defaultAtHeight[D-l]. Precomputed at init — 256 Node calls — so reads
// are lock-free and the old lazily-populated per-depth cache (a data race
// once proof verification went concurrent) is gone entirely.
var defaultAtHeight [MaxDepth + 1]chash.Hash

func init() {
	defaultAtHeight[0] = chash.Zero
	for h := 1; h <= MaxDepth; h++ {
		defaultAtHeight[h] = chash.Node(defaultAtHeight[h-1], defaultAtHeight[h-1])
	}
}

// defaultAt returns the empty-subtree digest at the given level of a
// depth-deep tree (level depth = leaves, level 0 = root).
func defaultAt(depth, level int) chash.Hash {
	return defaultAtHeight[depth-level]
}

type node struct {
	left, right *node
	hash        chash.Hash
}

// Tree is a mutable sparse Merkle tree. Leaves store value digests; callers
// keep the values themselves. Writing the zero digest deletes a leaf.
//
// Tree is not safe for concurrent use; wrap it if shared across goroutines.
type Tree struct {
	depth  int
	root   *node
	leaves map[Key]chash.Hash
}

// New creates an empty tree of the given depth.
func New(depth int) (*Tree, error) {
	if depth < 1 || depth > MaxDepth {
		return nil, fmt.Errorf("%w: %d", ErrBadDepth, depth)
	}
	return &Tree{
		depth:  depth,
		leaves: make(map[Key]chash.Hash),
	}, nil
}

// Depth returns the tree depth in bits.
func (t *Tree) Depth() int {
	return t.depth
}

// Len returns the number of non-empty leaves.
func (t *Tree) Len() int {
	return len(t.leaves)
}

// Root returns the current root digest.
func (t *Tree) Root() chash.Hash {
	if t.root == nil {
		return defaultAt(t.depth, 0)
	}
	return t.root.hash
}

// Get returns the value digest stored at key (chash.Zero if absent).
func (t *Tree) Get(key Key) chash.Hash {
	return t.leaves[key]
}

// Put stores a value digest at key. The zero digest removes the leaf.
func (t *Tree) Put(key Key, valueHash chash.Hash) {
	if valueHash.IsZero() {
		delete(t.leaves, key)
	} else {
		t.leaves[key] = valueHash
	}
	t.root = t.update(t.root, 0, key, valueHash)
}

// update rewrites the path for key at the given level, pruning empty subtrees.
func (t *Tree) update(n *node, level int, key Key, valueHash chash.Hash) *node {
	if level == t.depth {
		if valueHash.IsZero() {
			return nil
		}
		return &node{hash: valueHash}
	}
	if n == nil {
		if valueHash.IsZero() {
			return nil
		}
		n = &node{}
	}
	if key.Bit(level) == 0 {
		n.left = t.update(n.left, level+1, key, valueHash)
	} else {
		n.right = t.update(n.right, level+1, key, valueHash)
	}
	if n.left == nil && n.right == nil {
		return nil
	}
	n.hash = chash.Node(t.childHash(n.left, level+1), t.childHash(n.right, level+1))
	return n
}

func (t *Tree) childHash(n *node, level int) chash.Hash {
	if n == nil {
		return defaultAt(t.depth, level)
	}
	return n.hash
}

// Multiproof is a combined (non-)membership proof for a set of keys. It holds
// the digests of every maximal subtree that is off the union of the keys'
// paths and not an empty default.
type Multiproof struct {
	// Depth is the proven tree's depth.
	Depth int
	// Keys is the sorted set of proven keys.
	Keys []Key
	// Fills maps a node position (packed bit-path prefix) to its digest.
	// Positions absent from Fills are default (empty) subtrees.
	Fills map[Path]chash.Hash
}

// sortKeys returns a sorted, deduplicated copy of keys.
func sortKeys(keys []Key) []Key {
	uniq := make(map[Key]struct{}, len(keys))
	for _, k := range keys {
		uniq[k] = struct{}{}
	}
	out := make([]Key, 0, len(uniq))
	for k := range uniq {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}

// Prove builds a multiproof for the given keys (present or absent).
func (t *Tree) Prove(keys []Key) (*Multiproof, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("smt: proof over zero keys")
	}
	mp := &Multiproof{
		Depth: t.depth,
		Keys:  sortKeys(keys),
		Fills: make(map[Path]chash.Hash),
	}
	t.fill(t.root, 0, Path{}, mp.Keys, mp.Fills)
	return mp, nil
}

// fill walks the union of key paths and records off-path sibling digests.
func (t *Tree) fill(n *node, level int, prefix Path, keys []Key, fills map[Path]chash.Hash) {
	if len(keys) == 0 {
		// Off-path subtree: record its digest unless it is the default.
		if n != nil && n.hash != defaultAt(t.depth, level) {
			fills[prefix] = n.hash
		}
		return
	}
	if level == t.depth {
		return // leaf value supplied by the verifier
	}
	split := sort.Search(len(keys), func(i int) bool { return keys[i].Bit(level) == 1 })
	var left, right *node
	if n != nil {
		left, right = n.left, n.right
	}
	t.fill(left, level+1, prefix.Append(0), keys[:split], fills)
	t.fill(right, level+1, prefix.Append(1), keys[split:], fills)
}

// Verify checks the proof against root for the given key→digest assignment.
// Absent keys must map to chash.Zero. The assignment must cover exactly the
// proof's key set.
func (mp *Multiproof) Verify(root chash.Hash, values map[Key]chash.Hash) error {
	got, err := mp.ComputeRoot(values)
	if err != nil {
		return err
	}
	if got != root {
		return fmt.Errorf("%w: root mismatch", ErrBadProof)
	}
	return nil
}

// ComputeRoot recomputes the root implied by assigning the given value
// digests to the proof's keys. Calling it with the old values and comparing
// to the old root is verify_mht; calling it with new values is update.
func (mp *Multiproof) ComputeRoot(values map[Key]chash.Hash) (chash.Hash, error) {
	if mp.Depth < 1 || mp.Depth > MaxDepth {
		return chash.Zero, fmt.Errorf("%w: depth %d", ErrBadProof, mp.Depth)
	}
	if len(values) != len(mp.Keys) {
		return chash.Zero, fmt.Errorf("%w: %d values for %d keys", ErrKeyMismatch, len(values), len(mp.Keys))
	}
	for _, k := range mp.Keys {
		if _, ok := values[k]; !ok {
			return chash.Zero, fmt.Errorf("%w: missing value for key %x", ErrKeyMismatch, k[:4])
		}
	}
	return mp.computeNode(0, Path{}, mp.Keys, values), nil
}

func (mp *Multiproof) computeNode(level int, prefix Path, keys []Key, values map[Key]chash.Hash) chash.Hash {
	if len(keys) == 0 {
		if h, ok := mp.Fills[prefix]; ok {
			return h
		}
		return defaultAt(mp.Depth, level)
	}
	if level == mp.Depth {
		return values[keys[0]]
	}
	split := sort.Search(len(keys), func(i int) bool { return keys[i].Bit(level) == 1 })
	left := mp.computeNode(level+1, prefix.Append(0), keys[:split], values)
	right := mp.computeNode(level+1, prefix.Append(1), keys[split:], values)
	return chash.Node(left, right)
}

// UpdateRoot verifies the proof for oldValues against oldRoot, then returns
// the root implied by newValues. This is the enclave's
// "verify_mht + update" step done in one call.
func (mp *Multiproof) UpdateRoot(oldRoot chash.Hash, oldValues, newValues map[Key]chash.Hash) (chash.Hash, error) {
	if err := mp.Verify(oldRoot, oldValues); err != nil {
		return chash.Zero, err
	}
	return mp.ComputeRoot(newValues)
}

// EncodedSize returns the serialized size of the proof in bytes, used for the
// proof-size measurements in the evaluation.
func (mp *Multiproof) EncodedSize() int {
	size := 4 + len(mp.Keys)*chash.Size + 4
	for prefix := range mp.Fills {
		size += 4 + prefix.Len()/8 + 1 + chash.Size
	}
	return size
}

// Marshal serializes the multiproof. The wire format is unchanged from the
// string-position era ('0'/'1' position strings, sorted lexicographically),
// so proofs round-trip byte-identically across the packed-path rewrite.
func (mp *Multiproof) Marshal() []byte {
	e := chash.NewEncoder(mp.EncodedSize() + 64)
	e.PutUint32(uint32(mp.Depth))
	e.PutUint32(uint32(len(mp.Keys)))
	for _, k := range mp.Keys {
		e.PutBytes(k[:])
	}
	// Deterministic fill order: Path.Compare matches the lexicographic order
	// of the position strings the wire format carries.
	prefixes := make([]Path, 0, len(mp.Fills))
	for p := range mp.Fills {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	e.PutUint32(uint32(len(prefixes)))
	for _, p := range prefixes {
		e.PutString(p.String())
		e.PutHash(mp.Fills[p])
	}
	return e.Bytes()
}

// UnmarshalMultiproof parses a multiproof produced by Marshal.
func UnmarshalMultiproof(raw []byte) (*Multiproof, error) {
	d := chash.NewDecoder(raw)
	depth, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	if depth < 1 || depth > MaxDepth {
		return nil, fmt.Errorf("%w: %d", ErrBadDepth, depth)
	}
	nKeys, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	if nKeys > 1<<20 {
		return nil, fmt.Errorf("smt: unmarshal proof: %d keys", nKeys)
	}
	mp := &Multiproof{Depth: int(depth), Fills: make(map[Path]chash.Hash)}
	for i := uint32(0); i < nKeys; i++ {
		kb, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("smt: unmarshal proof key: %w", err)
		}
		if len(kb) != chash.Size {
			return nil, fmt.Errorf("smt: unmarshal proof: key of %d bytes", len(kb))
		}
		var k Key
		copy(k[:], kb)
		mp.Keys = append(mp.Keys, k)
	}
	nFills, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	if nFills > 1<<22 {
		return nil, fmt.Errorf("smt: unmarshal proof: %d fills", nFills)
	}
	for i := uint32(0); i < nFills; i++ {
		s, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("smt: unmarshal proof fill: %w", err)
		}
		if len(s) > int(depth) {
			return nil, fmt.Errorf("%w: fill position deeper than tree", ErrBadProof)
		}
		p, err := PathFromString(s)
		if err != nil {
			return nil, err
		}
		h, err := d.ReadHash()
		if err != nil {
			return nil, fmt.Errorf("smt: unmarshal proof fill: %w", err)
		}
		mp.Fills[p] = h
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	mp.Keys = sortKeys(mp.Keys)
	return mp, nil
}
