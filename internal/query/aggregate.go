package query

import (
	"encoding/binary"
	"fmt"

	"dcert/internal/chash"
)

// Aggregation support (§5.1 notes DCert supports any query type with an
// authenticated processing algorithm, citing authenticated aggregation
// work). Our aggregation scheme composes directly with the two-level index:
// the SP returns the aggregate together with the completeness-proven range,
// and the verifier recomputes the aggregate from the verified entries —
// sound because the range proof already guarantees that no entry in the
// window is hidden or fabricated.

// AggregateOp selects the aggregation function.
type AggregateOp int

// Aggregation operators over uint64-encoded values.
const (
	// AggCount counts versions in the window.
	AggCount AggregateOp = iota + 1
	// AggSum sums the values.
	AggSum
	// AggMin takes the minimum value.
	AggMin
	// AggMax takes the maximum value.
	AggMax
)

// String implements fmt.Stringer.
func (op AggregateOp) String() string {
	switch op {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggregateOp(%d)", int(op))
	}
}

// AggregateResult is the SP's answer to an aggregation query: the claimed
// aggregate plus the underlying authenticated range.
type AggregateResult struct {
	// Op is the aggregation operator.
	Op AggregateOp
	// Key, Lo, Hi define the aggregated window.
	Key    string
	Lo, Hi uint64
	// Value is the claimed aggregate.
	Value uint64
	// Historical carries the entries and proof backing the aggregate.
	Historical *HistoricalResult
}

// computeAggregate folds the operator over verified entries. Non-integer
// values (wrong width) make the query malformed.
func computeAggregate(op AggregateOp, res *HistoricalResult) (uint64, error) {
	switch op {
	case AggCount:
		return uint64(len(res.Entries)), nil
	case AggSum, AggMin, AggMax:
		var acc uint64
		for i, e := range res.Entries {
			if len(e.Value) != 8 {
				return 0, fmt.Errorf("%w: entry %d is not a uint64 value", ErrBadProof, i)
			}
			v := binary.BigEndian.Uint64(e.Value)
			switch {
			case op == AggSum:
				acc += v
			case i == 0:
				acc = v
			case op == AggMin && v < acc:
				acc = v
			case op == AggMax && v > acc:
				acc = v
			}
		}
		return acc, nil
	default:
		return 0, fmt.Errorf("%w: unknown operator %d", ErrBadProof, int(op))
	}
}

// AggregateQuery answers "op(values of key in [lo, hi])" on the named index.
func (sp *ServiceProvider) AggregateQuery(index string, op AggregateOp, key string, lo, hi uint64) (*AggregateResult, error) {
	hres, err := sp.HistoricalQuery(index, key, lo, hi)
	if err != nil {
		return nil, err
	}
	value, err := computeAggregate(op, hres)
	if err != nil {
		return nil, err
	}
	return &AggregateResult{Op: op, Key: key, Lo: lo, Hi: hi, Value: value, Historical: hres}, nil
}

// VerifyAggregate validates an aggregation result: the backing range is
// verified complete against the certified index root, the window fields must
// match, and the aggregate is recomputed and compared with the claim.
func VerifyAggregate(indexRoot chash.Hash, res *AggregateResult) error {
	if res == nil || res.Historical == nil {
		return fmt.Errorf("%w: missing backing range", ErrBadProof)
	}
	if res.Historical.Key != res.Key || res.Historical.Lo != res.Lo || res.Historical.Hi != res.Hi {
		return fmt.Errorf("%w: window mismatch between aggregate and backing range", ErrBadProof)
	}
	if err := VerifyHistorical(indexRoot, res.Historical); err != nil {
		return err
	}
	want, err := computeAggregate(res.Op, res.Historical)
	if err != nil {
		return err
	}
	if want != res.Value {
		return fmt.Errorf("%w: %s claimed %d, proven %d", ErrResultMismatch, res.Op, res.Value, want)
	}
	return nil
}
