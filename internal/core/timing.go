package core

import "time"

// startTimer returns a closure reporting elapsed seconds since the call.
func startTimer() func() float64 {
	start := time.Now()
	return func() float64 {
		return time.Since(start).Seconds()
	}
}
