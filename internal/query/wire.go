package query

import (
	"fmt"
	"math"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/mbtree"
	"dcert/internal/mht"
	"dcert/internal/mpt"
)

// Wire formats for the SP ↔ client exchange (§5.3): query results and their
// proofs serialize to canonical bytes, so the service can run over any
// transport and the proof-size metrics of Fig. 11 are exact encoded sizes.

// Marshal serializes a range proof.
func (p *RangeProof) Marshal() []byte {
	upper := p.Upper.Marshal()
	var lower []byte
	if p.Lower != nil {
		lower = p.Lower.Marshal()
	}
	e := chash.NewEncoder(16 + len(upper) + len(lower))
	e.PutBytes(upper)
	e.PutBool(p.Lower != nil)
	if p.Lower != nil {
		e.PutBytes(lower)
	}
	return e.Bytes()
}

// UnmarshalRangeProof parses a range proof produced by Marshal.
func UnmarshalRangeProof(raw []byte) (*RangeProof, error) {
	d := chash.NewDecoder(raw)
	upperRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	upper, err := mpt.UnmarshalWitness(upperRaw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	p := &RangeProof{Upper: upper}
	hasLower, err := d.Bool()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	if hasLower {
		lowerRaw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
		}
		if p.Lower, err = mbtree.UnmarshalWitness(lowerRaw); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	return p, nil
}

// marshalEntries encodes an entry list.
func marshalEntries(e *chash.Encoder, entries []mbtree.Entry) {
	e.PutUint32(uint32(len(entries)))
	for _, ent := range entries {
		e.PutUint64(ent.Version)
		e.PutBytes(ent.Value)
	}
}

func unmarshalEntries(d *chash.Decoder) ([]mbtree.Entry, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("oversized entry list: %d", n)
	}
	out := make([]mbtree.Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		val, err := d.ReadBytes()
		if err != nil {
			return nil, err
		}
		out = append(out, mbtree.Entry{Version: v, Value: val})
	}
	return out, nil
}

// Marshal serializes a historical query result (entries + proof).
func (r *HistoricalResult) Marshal() []byte {
	proof := r.Proof.Marshal()
	e := chash.NewEncoder(64 + len(proof) + 48*len(r.Entries))
	e.PutString(r.Key)
	e.PutUint64(r.Lo)
	e.PutUint64(r.Hi)
	marshalEntries(e, r.Entries)
	e.PutBytes(proof)
	return e.Bytes()
}

// UnmarshalHistoricalResult parses a historical result.
func UnmarshalHistoricalResult(raw []byte) (*HistoricalResult, error) {
	d := chash.NewDecoder(raw)
	var r HistoricalResult
	var err error
	if r.Key, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal result: %w", err)
	}
	if r.Lo, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal result: %w", err)
	}
	if r.Hi, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal result: %w", err)
	}
	if r.Entries, err = unmarshalEntries(d); err != nil {
		return nil, fmt.Errorf("query: unmarshal result: %w", err)
	}
	proofRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal result: %w", err)
	}
	if r.Proof, err = UnmarshalRangeProof(proofRaw); err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal result: %w", err)
	}
	return &r, nil
}

// Marshal serializes a keyword query result.
func (r *KeywordResult) Marshal() []byte {
	e := chash.NewEncoder(1024)
	e.PutUint32(uint32(len(r.Keywords)))
	for i, kw := range r.Keywords {
		e.PutString(kw)
		marshalEntries(e, r.Lists[i])
		e.PutBytes(r.Proofs[i].Marshal())
	}
	e.PutUint32(uint32(len(r.Matches)))
	for _, m := range r.Matches {
		e.PutUint64(m.Version)
		e.PutHash(m.TxHash)
	}
	return e.Bytes()
}

// UnmarshalKeywordResult parses a keyword result.
func UnmarshalKeywordResult(raw []byte) (*KeywordResult, error) {
	d := chash.NewDecoder(raw)
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
	}
	if n == 0 || n > 64 {
		return nil, fmt.Errorf("query: unmarshal keyword result: %d conjuncts", n)
	}
	var r KeywordResult
	for i := uint32(0); i < n; i++ {
		kw, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
		}
		entries, err := unmarshalEntries(d)
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
		}
		proofRaw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
		}
		proof, err := UnmarshalRangeProof(proofRaw)
		if err != nil {
			return nil, err
		}
		r.Keywords = append(r.Keywords, kw)
		r.Lists = append(r.Lists, entries)
		r.Proofs = append(r.Proofs, proof)
	}
	m, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
	}
	if m > 1<<24 {
		return nil, fmt.Errorf("query: unmarshal keyword result: %d matches", m)
	}
	for i := uint32(0); i < m; i++ {
		v, err := d.Uint64()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
		}
		h, err := d.ReadHash()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
		}
		r.Matches = append(r.Matches, Posting{Version: v, TxHash: h})
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal keyword result: %w", err)
	}
	return &r, nil
}

// MaxVersion is the upper bound used by whole-history queries.
const MaxVersion = uint64(math.MaxUint64)

// Marshal serializes a direct state read result.
func (r *StateResult) Marshal() []byte {
	proof := r.Proof.Marshal()
	e := chash.NewEncoder(64 + len(r.Key) + len(r.Value) + len(proof))
	e.PutString(r.Key)
	e.PutBool(r.Value != nil)
	if r.Value != nil {
		e.PutBytes(r.Value)
	}
	e.PutBytes(proof)
	return e.Bytes()
}

// UnmarshalStateResult parses a state result produced by Marshal.
func UnmarshalStateResult(raw []byte) (*StateResult, error) {
	d := chash.NewDecoder(raw)
	var r StateResult
	var err error
	if r.Key, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal state result: %w", err)
	}
	present, err := d.Bool()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal state result: %w", err)
	}
	if present {
		if r.Value, err = d.ReadBytes(); err != nil {
			return nil, fmt.Errorf("query: unmarshal state result: %w", err)
		}
	}
	proofRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal state result: %w", err)
	}
	if r.Proof, err = mpt.UnmarshalWitness(proofRaw); err != nil {
		return nil, fmt.Errorf("query: unmarshal state result: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal state result: %w", err)
	}
	return &r, nil
}

// Marshal serializes a transaction-inclusion result.
func (r *TxResult) Marshal() []byte {
	tx := r.Tx.Marshal()
	proof := r.Proof.Marshal()
	e := chash.NewEncoder(64 + len(tx) + len(proof))
	e.PutHash(r.BlockHash)
	e.PutUint32(uint32(r.Index))
	e.PutBytes(tx)
	e.PutBytes(proof)
	return e.Bytes()
}

// UnmarshalTxResult parses a tx result produced by Marshal.
func UnmarshalTxResult(raw []byte) (*TxResult, error) {
	d := chash.NewDecoder(raw)
	var r TxResult
	var err error
	if r.BlockHash, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("query: unmarshal tx result: %w", err)
	}
	idx, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal tx result: %w", err)
	}
	r.Index = int(idx)
	txRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal tx result: %w", err)
	}
	if r.Tx, err = chain.UnmarshalTransaction(txRaw); err != nil {
		return nil, fmt.Errorf("query: unmarshal tx result: %w", err)
	}
	proofRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal tx result: %w", err)
	}
	if r.Proof, err = mht.UnmarshalProof(proofRaw); err != nil {
		return nil, fmt.Errorf("query: unmarshal tx result: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal tx result: %w", err)
	}
	return &r, nil
}
