package statedb

import (
	"fmt"
	"sort"

	"dcert/internal/chash"
	"dcert/internal/mpt"
	"dcert/internal/smt"
)

// UpdateProof wire format. In a deployed DCert the update proof π crosses a
// trust boundary — it is marshalled from the untrusted host into the enclave
// — so it needs a canonical byte encoding, and that encoding is fuzzed (the
// pipeline's prepare/commit boundary must never turn attacker-shaped proof
// bytes into a certificate for a state transition that does not replay).
//
// Layout: kind byte, then the read set as sorted ⟨key, present, value⟩
// triples, then the backend witness (MPT node witness, or SMT multiproof
// plus the prior-value set). The present flag distinguishes a key proven
// absent (nil) from an empty value — the two hash differently.

// MarshalUpdateProof serializes an update proof canonically.
func MarshalUpdateProof(p *UpdateProof) []byte {
	e := chash.NewEncoder(256 + p.EncodedSize())
	e.PutByte(byte(p.Kind))
	putValueMap(e, p.ReadSet)
	if p.Kind == BackendSMT {
		e.PutBytes(p.SMT.Marshal())
		putValueMap(e, p.Prior)
		return e.Bytes()
	}
	e.PutBytes(p.Witness.Marshal())
	return e.Bytes()
}

// UnmarshalUpdateProof parses a proof produced by MarshalUpdateProof. The
// result is structurally well-formed but entirely untrusted — replay
// verification decides whether it proves anything.
func UnmarshalUpdateProof(raw []byte) (*UpdateProof, error) {
	d := chash.NewDecoder(raw)
	kindByte, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("statedb: unmarshal proof: %w", err)
	}
	kind := BackendKind(kindByte)
	if kind != BackendMPT && kind != BackendSMT {
		return nil, fmt.Errorf("statedb: unmarshal proof: unknown backend %d", kindByte)
	}
	p := &UpdateProof{Kind: kind}
	if p.ReadSet, err = readValueMap(d); err != nil {
		return nil, fmt.Errorf("statedb: unmarshal proof: read set: %w", err)
	}
	if kind == BackendSMT {
		rawProof, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("statedb: unmarshal proof: %w", err)
		}
		if p.SMT, err = smt.UnmarshalMultiproof(rawProof); err != nil {
			return nil, fmt.Errorf("statedb: unmarshal proof: %w", err)
		}
		if p.Prior, err = readValueMap(d); err != nil {
			return nil, fmt.Errorf("statedb: unmarshal proof: prior set: %w", err)
		}
	} else {
		rawWitness, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("statedb: unmarshal proof: %w", err)
		}
		if p.Witness, err = mpt.UnmarshalWitness(rawWitness); err != nil {
			return nil, fmt.Errorf("statedb: unmarshal proof: %w", err)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("statedb: unmarshal proof: %w", err)
	}
	return p, nil
}

// putValueMap encodes a key→value map with nil-awareness in sorted key order.
func putValueMap(e *chash.Encoder, m map[string][]byte) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.PutUint32(uint32(len(keys)))
	for _, k := range keys {
		e.PutString(k)
		v := m[k]
		e.PutBool(v != nil)
		e.PutBytes(v)
	}
}

func readValueMap(d *chash.Decoder) (map[string][]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	// The count is untrusted: never pre-size from it (a hostile count would
	// allocate gigabytes before the first truncated read fails). Each entry
	// occupies ≥ 9 encoded bytes, which bounds any honest count.
	if int64(n) > int64(d.Remaining())/9 {
		return nil, fmt.Errorf("statedb: value map count %d exceeds input", n)
	}
	m := make(map[string][]byte, n)
	for i := uint32(0); i < n; i++ {
		k, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		present, err := d.Bool()
		if err != nil {
			return nil, err
		}
		v, err := d.ReadBytes()
		if err != nil {
			return nil, err
		}
		if !present {
			if len(v) != 0 {
				return nil, fmt.Errorf("absent key %q carries a value", k)
			}
			v = nil
		}
		m[k] = v
	}
	return m, nil
}
