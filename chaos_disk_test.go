package dcert_test

import (
	"errors"
	"testing"
	"time"

	"dcert"
	"dcert/internal/storage/vfs"
)

// Disk chaos tests: drive a durable deployment through seeded disk-fault
// plans — failed writes, short writes, failed and lying fsyncs, power cuts
// with torn corrupted tails — and assert the recovery invariant: reopening
// the data directory always yields a gapless prefix of the certified chain,
// never serves a corrupt record, and the resumed issuer never re-signs a
// recovered height (its enclave performs exactly one ecall per new block).
//
// Run them through `make chaos-disk`; like the network chaos suite they are
// only considered passed under -race.

// diskChaosConfig builds the durable deployment config for one plan.
func diskChaosConfig(dir string, fs vfs.FS, fsync time.Duration, seed int64) dcert.Config {
	return dcert.Config{
		Workload:   dcert.KVStore,
		Contracts:  4,
		Accounts:   8,
		Difficulty: 2,
		Seed:       seed,
		KeySpace:   30,
		Storage: &dcert.StorageConfig{
			Dir:           dir,
			FS:            fs,
			FsyncInterval: fsync,
		},
	}
}

// minedChain snapshots the miner's authoritative chain (the in-memory truth
// the disk must recover a prefix of).
func minedChain(t *testing.T, dep *dcert.Deployment) []dcert.Hash {
	t.Helper()
	store := dep.Miner().Store()
	hashes := make([]dcert.Hash, 0, store.BestHeight()+1)
	for h := uint64(0); h <= store.BestHeight(); h++ {
		blk, err := store.AtHeight(h)
		if err != nil {
			t.Fatalf("miner AtHeight(%d): %v", h, err)
		}
		hashes = append(hashes, blk.Hash())
	}
	return hashes
}

// assertRecovered checks the crash-recovery invariant against the pre-crash
// chain and returns the resumed deployment's recovered tip.
func assertRecovered(t *testing.T, dep *dcert.Deployment, mined []dcert.Hash) uint64 {
	t.Helper()
	rec := dep.StorageRecovery()
	if rec == nil {
		t.Fatal("resumed deployment reports no recovery")
	}
	if len(rec.Blocks) == 0 {
		t.Fatal("recovery lost the genesis")
	}
	if got, max := rec.TipHeight(), uint64(len(mined)-1); got > max {
		t.Fatalf("recovered tip %d beyond mined tip %d", got, max)
	}
	for i, blk := range rec.Blocks {
		if blk.Header.Height != uint64(i) {
			t.Fatalf("recovered chain has a gap: block %d at height %d", i, blk.Header.Height)
		}
		if blk.Hash() != mined[i] {
			t.Fatalf("recovered block %d is not the mined block (corrupt record served)", i)
		}
	}
	// The recovered tip certificate must verify end-to-end: a superlight
	// client pinned to the resumed authority accepts it through full
	// recursive validation. The certificate may cover a K-block segment
	// ending at the tip, so recover the covered suffix first — a
	// single-block certificate matches at suffix length 1.
	if ck := rec.Checkpoint; ck != nil {
		if ck.Height != rec.TipHeight() {
			t.Fatalf("checkpoint height %d does not match recovered tip %d", ck.Height, rec.TipHeight())
		}
		var headers []*dcert.Header
		matched := false
		for k := uint64(0); k < ck.Height; k++ {
			headers = append([]*dcert.Header{&rec.Blocks[ck.Height-k].Header}, headers...)
			if dcert.SegmentDigest(headers) == ck.Cert.Digest {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatal("checkpoint certificate covers no chain suffix at the recovered tip")
		}
		client := dep.NewSuperlightClient()
		if err := client.ValidateSegment(&dcert.SegmentCert{Headers: headers, Cert: ck.Cert}); err != nil {
			t.Fatalf("recovered tip certificate rejected: %v", err)
		}
	}
	return rec.TipHeight()
}

// assertResumes mines more blocks on the resumed deployment and checks both
// liveness (the chain extends, certificates validate) and the no-double-sign
// invariant (exactly one ecall per new block: the fresh enclave adopted the
// checkpoint instead of re-certifying recovered heights).
func assertResumes(t *testing.T, dep *dcert.Deployment, tip uint64, more int) {
	t.Helper()
	client := dep.NewSuperlightClient()
	before := dep.Issuer().Enclave().Stats().Ecalls
	for i := 0; i < more; i++ {
		blk, cert, err := dep.MineAndCertify(3)
		if err != nil {
			t.Fatalf("mine after resume: %v", err)
		}
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			t.Fatalf("client rejects post-resume block %d: %v", blk.Header.Height, err)
		}
	}
	if got := dep.Miner().Store().BestHeight(); got != tip+uint64(more) {
		t.Fatalf("resumed chain at height %d, want %d", got, tip+uint64(more))
	}
	if got := dep.Issuer().Enclave().Stats().Ecalls - before; got != uint64(more) {
		t.Fatalf("issuer made %d ecalls for %d new blocks (re-signed a recovered height?)", got, more)
	}
}

func TestChaosDiskFaultPlans(t *testing.T) {
	cases := []struct {
		name   string
		plan   vfs.FaultPlan
		fsync  time.Duration
		blocks int
	}{
		{
			// A write fails outright mid-mining with per-append fsync: the
			// crash point is the injected error itself.
			name:   "failed write, per-record fsync",
			plan:   vfs.FaultPlan{Seed: 101, FailWriteOp: 14},
			blocks: 10,
		},
		{
			// Group commit with an effectively infinite interval, then the
			// power dies: most of the run was only in page cache, and the
			// surviving torn tail carries a flipped byte.
			name:   "power cut with corrupted torn tail",
			plan:   vfs.FaultPlan{Seed: 202, TornTail: 0.6, FlipInTorn: true},
			fsync:  time.Hour,
			blocks: 8,
		},
		{
			// A lying disk: one fsync silently does nothing, a later one
			// fails loudly, then the power dies.
			name:   "omitted and failed fsync",
			plan:   vfs.FaultPlan{Seed: 303, OmitSyncOp: 9, FailSyncOp: 17, TornTail: 0.3, FlipInTorn: true},
			blocks: 8,
		},
		{
			// A torn write at the syscall boundary: half a frame lands.
			name:   "short write",
			plan:   vfs.FaultPlan{Seed: 404, ShortWriteOp: 11},
			blocks: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			faulty := vfs.NewFault(vfs.OS{}, tc.plan)
			dep, err := dcert.NewDeployment(diskChaosConfig(dir, faulty, tc.fsync, tc.plan.Seed))
			if err != nil {
				t.Fatalf("NewDeployment: %v", err)
			}
			for i := 0; i < tc.blocks; i++ {
				if _, _, err := dep.MineAndCertify(3); err != nil {
					if !errors.Is(err, vfs.ErrInjected) {
						t.Fatalf("mining failed with a non-injected error: %v", err)
					}
					break // the crash point
				}
			}
			mined := minedChain(t, dep)
			faulty.PowerCut()
			// Crash: the deployment is abandoned without Close; only what the
			// fault FS considered durable is on disk.

			resumed, err := dcert.OpenDeployment(diskChaosConfig(dir, nil, tc.fsync, tc.plan.Seed))
			if err != nil {
				t.Fatalf("OpenDeployment after crash: %v", err)
			}
			defer resumed.Close()
			tip := assertRecovered(t, resumed, mined)
			assertResumes(t, resumed, tip, 3)
		})
	}
}

// TestChaosDiskMidSegmentKill crashes the primary issuer mid-segment: the
// segment committer has certified one full segment (heights 1–4) while two
// more blocks (5–6) sit in its open batch behind an hour-long deadline. The
// kill aborts the pipeline — in-flight speculation dies with the enclave —
// so the persisted checkpoint lands exactly on the segment boundary. Restart
// resumes the recursion from the segment certificate (the suffix search in
// ResumeIssuer) and re-certifies ONLY the uncertified suffix, as one segment
// with one ecall: the certified prefix stays gapless and no height is ever
// double-signed.
func TestChaosDiskMidSegmentKill(t *testing.T) {
	dir := t.TempDir()
	dep, err := dcert.NewDeployment(diskChaosConfig(dir, nil, 0, 606))
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	plane, err := dep.StartCertPlane(1)
	if err != nil {
		t.Fatalf("StartCertPlane: %v", err)
	}
	err = plane.StartPipelines(dcert.PipelineConfig{
		Workers: 2,
		Segment: &dcert.SegmentPolicy{MaxBlocks: 4, MaxDelay: time.Hour},
	})
	if err != nil {
		t.Fatalf("StartPipelines: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := plane.MineAndBroadcastPipelined(3); err != nil {
			t.Fatalf("mine block %d: %v", i+1, err)
		}
	}
	// Wait for the first segment to certify; blocks 5–6 stay speculative in
	// the open batch (the deadline never fires).
	iss, err := plane.Issuer("ci0")
	if err != nil {
		t.Fatalf("Issuer: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for iss.Node().Tip().Header.Height < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("first segment never certified (tip %d)", iss.Node().Tip().Header.Height)
		}
		time.Sleep(time.Millisecond)
	}
	if h := iss.Node().Tip().Header.Height; h != 4 {
		t.Fatalf("certified tip %d, want the segment boundary 4", h)
	}

	if err := plane.Kill("ci0"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	ckh, err := plane.CheckpointHeight("ci0")
	if err != nil {
		t.Fatalf("CheckpointHeight: %v", err)
	}
	if ckh != 4 {
		t.Fatalf("checkpoint height %d, want the segment boundary 4 (speculation must die with the enclave)", ckh)
	}

	if err := plane.Restart("ci0"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	iss, err = plane.Issuer("ci0")
	if err != nil {
		t.Fatalf("Issuer after restart: %v", err)
	}
	if h := iss.Node().Tip().Header.Height; h != 6 {
		t.Fatalf("resumed certified tip %d, want 6", h)
	}
	// The fresh enclave re-certified only the uncertified suffix [5,6], as
	// one segment: exactly one ecall, no recovered height re-signed.
	if got := iss.Enclave().Stats().Ecalls; got != 1 {
		t.Fatalf("resumed enclave made %d ecalls for 2 missed blocks, want 1 (one segment)", got)
	}
	seg := iss.LatestSegment()
	if seg == nil || seg.Start() != 5 || seg.End() != 6 {
		t.Fatalf("catch-up segment %+v, want cover [5,6]", seg)
	}
	if err := dep.NewSuperlightClient().ValidateSegment(seg); err != nil {
		t.Fatalf("catch-up segment rejected: %v", err)
	}

	// The restarted slot keeps amortizing: one more full segment, one ecall.
	before := iss.Enclave().Stats().Ecalls
	for i := 0; i < 4; i++ {
		if _, err := plane.MineAndBroadcastPipelined(3); err != nil {
			t.Fatalf("mine post-restart block %d: %v", i+1, err)
		}
	}
	if err := plane.DrainPipelines(); err != nil {
		t.Fatalf("DrainPipelines: %v", err)
	}
	plane.Stop()
	if got := iss.Enclave().Stats().Ecalls - before; got != 1 {
		t.Fatalf("4 post-restart blocks took %d ecalls, want 1", got)
	}

	// Full process restart: the mixed history (segment certificates
	// throughout) must recover gapless from disk, and the segment checkpoint
	// must re-validate through the suffix-aware path.
	mined := minedChain(t, dep)
	if err := dep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	resumed, err := dcert.OpenDeployment(diskChaosConfig(dir, nil, 0, 606))
	if err != nil {
		t.Fatalf("OpenDeployment: %v", err)
	}
	defer resumed.Close()
	tip := assertRecovered(t, resumed, mined)
	if tip != 10 {
		t.Fatalf("recovered tip %d, want 10", tip)
	}
	assertResumes(t, resumed, tip, 3)
}

// TestChaosDiskPowerCutPipelined crashes a deployment running the full
// redundant certification plane with pipelined certification — blocks are
// journaled uncertified at submit time and certificates attach from
// concurrent pipeline consumers — then recovers it.
func TestChaosDiskPowerCutPipelined(t *testing.T) {
	dir := t.TempDir()
	faulty := vfs.NewFault(vfs.OS{}, vfs.FaultPlan{Seed: 505, TornTail: 0.5, FlipInTorn: true})
	dep, err := dcert.NewDeployment(diskChaosConfig(dir, faulty, time.Hour, 505))
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	plane, err := dep.StartCertPlane(2)
	if err != nil {
		t.Fatalf("StartCertPlane: %v", err)
	}
	if err := plane.StartPipelines(dcert.PipelineConfig{Workers: 2}); err != nil {
		t.Fatalf("StartPipelines: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := plane.MineAndBroadcastPipelined(3); err != nil {
			t.Fatalf("mine block %d: %v", i+1, err)
		}
	}
	if err := plane.DrainPipelines(); err != nil {
		t.Fatalf("DrainPipelines: %v", err)
	}
	plane.Stop()
	mined := minedChain(t, dep)
	faulty.PowerCut()

	resumed, err := dcert.OpenDeployment(diskChaosConfig(dir, nil, time.Hour, 505))
	if err != nil {
		t.Fatalf("OpenDeployment after crash: %v", err)
	}
	defer resumed.Close()
	tip := assertRecovered(t, resumed, mined)
	assertResumes(t, resumed, tip, 3)
}
