package smt

import (
	"fmt"
	"testing"

	"dcert/internal/chash"
)

func populated(b *testing.B, n int) (*Tree, []Key) {
	b.Helper()
	tr, err := New(64)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = KeyFromString(fmt.Sprintf("k%d", i))
		tr.Put(keys[i], chash.Leaf([]byte(fmt.Sprintf("v%d", i))))
	}
	return tr, keys
}

func BenchmarkPut(b *testing.B) {
	tr, keys := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i%len(keys)], chash.Leaf([]byte(fmt.Sprintf("n%d", i))))
	}
}

func BenchmarkProve32(b *testing.B) {
	tr, keys := populated(b, 10000)
	batch := keys[:32]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Prove(batch); err != nil {
			b.Fatalf("Prove: %v", err)
		}
	}
}

// BenchmarkMultiproof covers the full enclave-side hash path: proof
// construction over a 32-key batch plus the root recomputation that
// verify_mht/update perform. Allocations here are pure overhead on the
// certification hot loop, so the report tracks them.
func BenchmarkMultiproof(b *testing.B) {
	tr, keys := populated(b, 10000)
	batch := keys[:32]
	vals := make(map[Key]chash.Hash, len(batch))
	for _, k := range batch {
		vals[k] = tr.Get(k)
	}
	root := tr.Root()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		proof, err := tr.Prove(batch)
		if err != nil {
			b.Fatalf("Prove: %v", err)
		}
		if err := proof.Verify(root, vals); err != nil {
			b.Fatalf("Verify: %v", err)
		}
	}
}

func BenchmarkUpdateRoot32(b *testing.B) {
	tr, keys := populated(b, 10000)
	batch := keys[:32]
	proof, err := tr.Prove(batch)
	if err != nil {
		b.Fatalf("Prove: %v", err)
	}
	oldVals := make(map[Key]chash.Hash, 32)
	newVals := make(map[Key]chash.Hash, 32)
	for i, k := range batch {
		oldVals[k] = tr.Get(k)
		newVals[k] = chash.Leaf([]byte(fmt.Sprintf("new%d", i)))
	}
	root := tr.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proof.UpdateRoot(root, oldVals, newVals); err != nil {
			b.Fatalf("UpdateRoot: %v", err)
		}
	}
}
