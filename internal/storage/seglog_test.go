package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcert/internal/storage/vfs"
)

// collect replays a log into (tag, payload) pairs.
func collect(t *testing.T, l *Log) []struct {
	tag     byte
	payload []byte
} {
	t.Helper()
	var out []struct {
		tag     byte
		payload []byte
	}
	err := l.Scan(func(tag byte, payload []byte) error {
		out = append(out, struct {
			tag     byte
			payload []byte
		}{tag, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(vfs.OS{}, dir, LogOptions{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(byte(1+i%3), []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l, err = OpenLog(vfs.OS{}, dir, LogOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if rec := l.Recovery(); rec.Torn || rec.Records != 20 {
		t.Fatalf("recovery = %+v, want 20 clean records", rec)
	}
	got := collect(t, l)
	for i, r := range got {
		want := fmt.Sprintf("record-%d", i)
		if string(r.payload) != want || r.tag != byte(1+i%3) {
			t.Fatalf("record %d = tag %d %q", i, r.tag, r.payload)
		}
	}
	// Appending after reopen resumes exactly after the last record.
	if err := l.Append(9, []byte("after-reopen")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := collect(t, l); len(got) != 21 || string(got[20].payload) != "after-reopen" {
		t.Fatalf("post-reopen log has %d records", len(got))
	}
}

func TestLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(vfs.OS{}, dir, LogOptions{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	payload := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 12; i++ {
		if err := l.Append(1, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(names) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(names))
	}
	l, err = OpenLog(vfs.OS{}, dir, LogOptions{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if got := collect(t, l); len(got) != 12 {
		t.Fatalf("recovered %d records across segments, want 12", len(got))
	}
}

func TestLogGroupCommitLagsDurability(t *testing.T) {
	dir := t.TempDir()
	base := vfs.NewFault(vfs.OS{}, vfs.FaultPlan{})
	l, err := OpenLog(base, dir, LogOptions{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(1, []byte("unsynced")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// No sync has happened (interval far away): a power cut loses them all.
	if err := base.PowerCut(); err != nil {
		t.Fatalf("PowerCut: %v", err)
	}
	l2, err := OpenLog(vfs.OS{}, dir, LogOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 0 {
		t.Fatalf("un-synced records survived a power cut: %d", len(got))
	}

	// With explicit Sync, the same records survive.
	dir2 := t.TempDir()
	base2 := vfs.NewFault(vfs.OS{}, vfs.FaultPlan{})
	l3, err := OpenLog(base2, dir2, LogOptions{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := l3.Append(1, []byte("synced")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l3.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := base2.PowerCut(); err != nil {
		t.Fatalf("PowerCut: %v", err)
	}
	l4, err := OpenLog(vfs.OS{}, dir2, LogOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l4.Close()
	if got := collect(t, l4); len(got) != 5 {
		t.Fatalf("synced records lost: %d/5", len(got))
	}
}

// TestLogTailCorruption drives the opener through the corruption taxonomy:
// each case damages a freshly written log and recovery must keep exactly
// the records before the damage — never a corrupt one.
func TestLogTailCorruption(t *testing.T) {
	const records = 8
	write := func(t *testing.T) string {
		dir := t.TempDir()
		l, err := OpenLog(vfs.OS{}, dir, LogOptions{})
		if err != nil {
			t.Fatalf("OpenLog: %v", err)
		}
		for i := 0; i < records; i++ {
			if err := l.Append(1, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return dir
	}
	segPath := func(dir string) string { return filepath.Join(dir, segName(1)) }
	frameLen := frameHeaderSize + 1 + len("payload-00")

	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
		keep   int // records surviving recovery
	}{
		{
			name: "truncated tail mid-frame",
			damage: func(t *testing.T, path string) {
				raw, _ := os.ReadFile(path)
				os.WriteFile(path, raw[:len(raw)-5], 0o644)
			},
			keep: records - 1,
		},
		{
			name: "truncated inside header",
			damage: func(t *testing.T, path string) {
				raw, _ := os.ReadFile(path)
				os.WriteFile(path, raw[:len(raw)-frameLen+3], 0o644)
			},
			keep: records - 1,
		},
		{
			name: "flipped payload byte in last frame",
			damage: func(t *testing.T, path string) {
				raw, _ := os.ReadFile(path)
				raw[len(raw)-2] ^= 0xFF
				os.WriteFile(path, raw, 0o644)
			},
			keep: records - 1,
		},
		{
			name: "flipped byte mid-log cuts everything after",
			damage: func(t *testing.T, path string) {
				raw, _ := os.ReadFile(path)
				raw[3*frameLen+frameHeaderSize] ^= 0x01
				os.WriteFile(path, raw, 0o644)
			},
			keep: 3,
		},
		{
			name: "oversized length field",
			damage: func(t *testing.T, path string) {
				raw, _ := os.ReadFile(path)
				binary.BigEndian.PutUint32(raw[(records-1)*frameLen:], maxRecord+1)
				os.WriteFile(path, raw, 0o644)
			},
			keep: records - 1,
		},
		{
			name: "zero length field",
			damage: func(t *testing.T, path string) {
				raw, _ := os.ReadFile(path)
				binary.BigEndian.PutUint32(raw[(records-1)*frameLen:], 0)
				os.WriteFile(path, raw, 0o644)
			},
			keep: records - 1,
		},
		{
			name: "garbage appended after valid records",
			damage: func(t *testing.T, path string) {
				f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
				f.Close()
			},
			keep: records,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := write(t)
			tc.damage(t, segPath(dir))
			l, err := OpenLog(vfs.OS{}, dir, LogOptions{})
			if err != nil {
				t.Fatalf("OpenLog after damage: %v", err)
			}
			defer l.Close()
			rec := l.Recovery()
			if !rec.Torn {
				t.Fatal("recovery must report the repair")
			}
			got := collect(t, l)
			if len(got) != tc.keep {
				t.Fatalf("recovered %d records, want %d", len(got), tc.keep)
			}
			for i, r := range got {
				want := fmt.Sprintf("payload-%02d", i)
				if string(r.payload) != want {
					t.Fatalf("record %d = %q, want %q (corrupt record served)", i, r.payload, want)
				}
			}
			// The file was physically repaired: appending then reopening
			// yields the kept records plus the new one.
			if err := l.Append(2, []byte("appended-after-repair")); err != nil {
				t.Fatalf("Append after repair: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l2, err := OpenLog(vfs.OS{}, dir, LogOptions{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer l2.Close()
			got2 := collect(t, l2)
			if len(got2) != tc.keep+1 || string(got2[tc.keep].payload) != "appended-after-repair" {
				t.Fatalf("post-repair append not recovered: %d records", len(got2))
			}
		})
	}
}

func TestLogDropsSegmentsPastDefect(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(vfs.OS{}, dir, LogOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 30)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the second segment: segments 3+ must be dropped entirely.
	path := filepath.Join(dir, segName(2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw[frameHeaderSize] ^= 0x55
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	l, err = OpenLog(vfs.OS{}, dir, LogOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	rec := l.Recovery()
	if !rec.Torn || rec.DroppedSegments == 0 {
		t.Fatalf("recovery = %+v, want dropped segments", rec)
	}
	got := collect(t, l)
	if len(got) != 1 {
		t.Fatalf("recovered %d records, want 1 (first segment only)", len(got))
	}
}

func TestLogTruncateTailAndReset(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(vfs.OS{}, dir, LogOptions{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	type pos struct {
		seg int
		end int64
	}
	var positions []pos
	for i := 0; i < 6; i++ {
		if err := l.Append(1, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	err = l.scanPos(func(tag byte, payload []byte, seg int, end int64) error {
		positions = append(positions, pos{seg, end})
		return nil
	})
	if err != nil {
		t.Fatalf("scanPos: %v", err)
	}
	if err := l.TruncateTail(positions[2].seg, positions[2].end); err != nil {
		t.Fatalf("TruncateTail: %v", err)
	}
	if got := collect(t, l); len(got) != 3 {
		t.Fatalf("after TruncateTail: %d records, want 3", len(got))
	}
	if err := l.Append(1, []byte("new")); err != nil {
		t.Fatalf("Append after truncate: %v", err)
	}
	if got := collect(t, l); len(got) != 4 || string(got[3].payload) != "new" {
		t.Fatalf("append after truncate failed: %d", len(got))
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("after Reset: %d records", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// FuzzFrameRecovery fuzzes the record-framing scanner: whatever bytes land
// in a segment file, the opener must never serve a record that was not
// appended intact, never crash, and always leave a file it can reopen.
func FuzzFrameRecovery(f *testing.F) {
	valid := buildFrame(1, []byte("seed-record"))
	f.Add(valid)
	f.Add(append(append([]byte(nil), valid...), valid[:5]...))
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), raw, 0o644); err != nil {
			t.Skip()
		}
		l, err := OpenLog(vfs.OS{}, dir, LogOptions{})
		if err != nil {
			t.Fatalf("OpenLog on fuzzed input: %v", err)
		}
		// Every surviving record must re-verify its own CRC framing.
		var n int
		err = l.Scan(func(tag byte, payload []byte) error {
			frame := buildFrame(tag, payload)
			if size, ok := nextFrame(frame); !ok || size != len(frame) {
				t.Fatalf("served record fails its own framing")
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		// The repaired log must append and reopen cleanly.
		if err := l.Append(7, []byte("post-fuzz")); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, err := OpenLog(vfs.OS{}, dir, LogOptions{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		var m int
		if err := l2.Scan(func(byte, []byte) error { m++; return nil }); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if m != n+1 {
			t.Fatalf("reopen lost records: %d != %d+1", m, n)
		}
	})
}
