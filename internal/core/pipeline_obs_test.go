package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/obs"
	"dcert/internal/workload"
)

// TestPipelineStatsConcurrent is the regression test for the Stats data race:
// stage busy time used to accumulate in a plain array written by the stage
// goroutines, so snapshotting mid-stream tripped the race detector (and could
// return torn durations). Busy accounting now lives in atomic histograms;
// hammering Stats while the pipeline runs must be clean under -race.
func TestPipelineStatsConcurrent(t *testing.T) {
	const seed = "stats-race-v1"
	blks := mineBlocks(t, workload.KVStore, 6, 6)
	ci := newSeededIssuer(t, workload.KVStore, seed)

	pl, err := NewPipeline(ci, PipelineConfig{Workers: 2})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := pl.Stats()
				if s.VerifyBusy < 0 || s.ExecBusy < 0 || s.CommitBusy < 0 {
					t.Error("negative busy time")
					return
				}
			}
		}()
	}

	go func() {
		for _, blk := range blks {
			if err := pl.Submit(blk); err != nil {
				break
			}
		}
		pl.Close()
	}()
	for res := range pl.Results() {
		if res.Err != nil {
			t.Errorf("block %d: %v", res.Block.Header.Height, res.Err)
		}
	}
	close(stop)
	readers.Wait()
	if err := pl.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	s := pl.Stats()
	if s.Blocks != len(blks) {
		t.Fatalf("Blocks = %d, want %d", s.Blocks, len(blks))
	}
	if s.VerifyBusy <= 0 || s.ExecBusy <= 0 || s.CommitBusy <= 0 {
		t.Fatalf("busy times not accumulated: %+v", s)
	}
	if s.VerifyP99 <= 0 || s.ExecP99 <= 0 || s.CommitP99 <= 0 {
		t.Fatalf("stage p99s not derived: %+v", s)
	}
	if s.IndexBusy != 0 || s.IndexP99 != 0 {
		t.Fatalf("index stage disabled but accounted: %+v", s)
	}
}

// TestPipelineInstrumented drives an instrumented pipeline end to end and
// checks the registry and tracer actually observed it: stage histograms count
// every block, queue gauges return to zero, counters line up with the stream,
// and each block's stage spans link back to its root span.
func TestPipelineInstrumented(t *testing.T) {
	const seed = "pipeline-obs-v1"
	const numBlocks = 5
	indexNames := []string{"mock-a", "mock-b"}
	blks := mineBlocks(t, workload.KVStore, numBlocks, 4)

	ci := newSeededIssuer(t, workload.KVStore, seed)
	for _, name := range indexNames {
		if err := ci.Program().RegisterUpdater(mockIndex{name: name}); err != nil {
			t.Fatalf("RegisterUpdater: %v", err)
		}
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1024)
	ci.Instrument(reg, tracer, nil, "ci-test")

	results, err := ci.ProcessBlocksPipelined(blks, PipelineConfig{
		Workers:   2,
		IndexJobs: mockIndexJobs(indexNames),
	})
	if err != nil {
		t.Fatalf("ProcessBlocksPipelined: %v", err)
	}
	if len(results) != numBlocks {
		t.Fatalf("results = %d, want %d", len(results), numBlocks)
	}

	count := func(name string, labels ...obs.Label) uint64 {
		t.Helper()
		return reg.Counter(name, "", labels...).Value()
	}
	if got := count("dcert_pipeline_blocks_total", obs.L("ci", "ci-test")); got != numBlocks {
		t.Errorf("pipeline blocks counter = %d, want %d", got, numBlocks)
	}
	if got := count("dcert_issuer_blocks_certified_total", obs.L("ci", "ci-test")); got != numBlocks {
		t.Errorf("blocks certified counter = %d, want %d", got, numBlocks)
	}
	if got := count("dcert_issuer_ecalls_total", obs.L("ci", "ci-test"), obs.L("kind", "block")); got != numBlocks {
		t.Errorf("block ecalls = %d, want %d", got, numBlocks)
	}
	wantIdx := uint64(numBlocks * len(indexNames))
	if got := count("dcert_issuer_ecalls_total", obs.L("ci", "ci-test"), obs.L("kind", "index")); got != wantIdx {
		t.Errorf("index ecalls = %d, want %d", got, wantIdx)
	}
	if got := count("dcert_pipeline_aborts_total", obs.L("ci", "ci-test")); got != 0 {
		t.Errorf("aborts = %d, want 0", got)
	}
	if got := count("dcert_pipeline_rollbacks_total", obs.L("ci", "ci-test")); got != 0 {
		t.Errorf("rollbacks = %d, want 0", got)
	}
	for _, stage := range []string{"verify", "execute", "commit", "index"} {
		h := reg.Histogram("dcert_pipeline_stage_seconds", "", nil,
			obs.L("ci", "ci-test"), obs.L("stage", stage))
		if got := h.Count(); got != numBlocks {
			t.Errorf("stage %s histogram count = %d, want %d", stage, got, numBlocks)
		}
	}
	for _, queue := range []string{"verify", "commit", "index"} {
		g := reg.Gauge("dcert_pipeline_queue_depth", "", obs.L("ci", "ci-test"), obs.L("queue", queue))
		if got := g.Value(); got != 0 {
			t.Errorf("drained queue %s depth = %d, want 0", queue, got)
		}
	}

	// The Prometheus exposition must carry the pipeline series.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		`dcert_pipeline_stage_seconds_count{ci="ci-test",stage="commit"} 5`,
		`dcert_issuer_ecalls_total{ci="ci-test",kind="block"} 5`,
		`dcert_pipeline_queue_depth{ci="ci-test",queue="verify"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Tracing: every block got a root span plus one span per stage, and the
	// stage spans parent onto their block's root.
	spans := tracer.Recent(0)
	byName := map[string]int{}
	roots := map[obs.SpanID]bool{}
	for _, sp := range spans {
		byName[sp.Name]++
		if sp.Name == "pipeline.block" {
			roots[sp.ID] = true
		}
	}
	for _, name := range []string{"pipeline.block", "pipeline.verify", "pipeline.execute", "pipeline.commit", "pipeline.index"} {
		if byName[name] != numBlocks {
			t.Errorf("span %s count = %d, want %d", name, byName[name], numBlocks)
		}
	}
	for _, sp := range spans {
		if sp.Name != "pipeline.block" && !roots[sp.Parent] {
			t.Errorf("span %s (id %d) has no root parent (parent %d)", sp.Name, sp.ID, sp.Parent)
		}
		if sp.Duration < 0 {
			t.Errorf("span %s has negative duration", sp.Name)
		}
	}
}

// TestPipelineAbortCounters checks the failure-path instrumentation: a
// mid-stream abort counts exactly one abort and one rollback per speculated
// block, and LastCertTime tracks the certified tip.
func TestPipelineAbortCounters(t *testing.T) {
	const seed = "pipeline-obs-abort-v1"
	blks := mineBlocks(t, workload.KVStore, 5, 4)
	ci := newSeededIssuer(t, workload.KVStore, seed)
	reg := obs.NewRegistry()
	ci.Instrument(reg, nil, nil, "ci-abort")

	if !ci.LastCertTime().IsZero() {
		t.Fatal("LastCertTime non-zero before first certificate")
	}

	// Corrupt a later block's claimed state root (re-sealed so stateless
	// verification passes): the enclave replay rejects it mid-stream after
	// earlier blocks certified, leaving speculation to roll back.
	bad := *blks[3]
	bad.Header.StateRoot = chash.Leaf([]byte("obs poison"))
	if err := consensus.Seal(ci.Node().Params(), &bad.Header); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	blks[3] = &bad
	results, err := ci.ProcessBlocksPipelined(blks, PipelineConfig{Workers: 2})
	if err == nil {
		t.Fatal("expected pipeline failure")
	}
	certified := 0
	for _, res := range results {
		if res.Err == nil {
			certified++
		}
	}
	if certified == 0 || certified >= len(blks) {
		t.Fatalf("certified = %d, want mid-stream failure", certified)
	}
	if got := reg.Counter("dcert_pipeline_aborts_total", "", obs.L("ci", "ci-abort")).Value(); got != 1 {
		t.Errorf("aborts = %d, want 1", got)
	}
	if got := reg.Counter("dcert_pipeline_rollbacks_total", "", obs.L("ci", "ci-abort")).Value(); got == 0 {
		t.Error("rollbacks = 0, want > 0 (speculation past the failed block)")
	}
	if ci.LastCertTime().IsZero() {
		t.Error("LastCertTime still zero after certification")
	}
	if time.Since(ci.LastCertTime()) > time.Minute {
		t.Error("LastCertTime implausibly old")
	}
}

// benchmarkPipeline certifies a pre-mined stream through a fresh issuer per
// iteration, instrumented or bare. The delta between the two variants is the
// full instrumentation overhead (registry + tracer attached vs none);
// EXPERIMENTS.md records a reference run.
func benchmarkPipeline(b *testing.B, instrument bool) {
	blks := mineBlocks(b, workload.KVStore, 4, 6)
	// The plane outlives the per-iteration issuers: registry identity dedup
	// keeps every fresh issuer on the same series, so only the hot-path cost
	// of the instruments lands in the timed (and alloc-counted) region.
	reg, tracer := obs.NewRegistry(), obs.NewTracer(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ci := newSeededIssuer(b, workload.KVStore, "bench-pipe-v1")
		if instrument {
			ci.Instrument(reg, tracer, nil, "bench")
		}
		b.StartTimer()
		results, err := ci.ProcessBlocksPipelined(blks, PipelineConfig{Workers: 2})
		if err != nil {
			b.Fatalf("ProcessBlocksPipelined: %v", err)
		}
		if len(results) != len(blks) {
			b.Fatalf("results = %d, want %d", len(results), len(blks))
		}
	}
}

func BenchmarkPipelineBare(b *testing.B)         { benchmarkPipeline(b, false) }
func BenchmarkPipelineInstrumented(b *testing.B) { benchmarkPipeline(b, true) }
