// Package fleet shards one SP's serving duty across N replicas: a
// consistent-hash router pins each query key to a replica (warm caches,
// stable load split), every replica ingests every block behind an RCU-style
// snapshot so reads never block on writes, and a shared front door routes
// both fabric (topic) and wire (RPC) traffic.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Router is a rendezvous-hashing (highest-random-weight) consistent router:
// each key goes to the member with the highest hash(member, key) score.
// Adding or removing one of N members remaps only the keys whose top score
// involved that member — about 1/N of the key space — while every other key
// keeps its replica and its warm cache.
//
// Router is safe for concurrent use; Route may run while members change.
type Router struct {
	mu      sync.RWMutex
	members []string // sorted for deterministic iteration
}

// NewRouter creates a router over the given members.
func NewRouter(members ...string) *Router {
	r := &Router{}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

// Add inserts a member (idempotent).
func (r *Router) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchStrings(r.members, name)
	if i < len(r.members) && r.members[i] == name {
		return
	}
	r.members = append(r.members, "")
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = name
}

// Remove deletes a member (idempotent).
func (r *Router) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchStrings(r.members, name)
	if i < len(r.members) && r.members[i] == name {
		r.members = append(r.members[:i], r.members[i+1:]...)
	}
}

// Members returns the current member set, sorted.
func (r *Router) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Route returns the member owning key.
func (r *Router) Route(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.members) == 0 {
		return "", fmt.Errorf("fleet: routing with no members")
	}
	best, bestScore := r.members[0], uint64(0)
	for _, m := range r.members {
		if s := score(m, key); s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best, nil
}

// score is the rendezvous weight of (member, key).
func score(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}
