package core

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"testing"
	"time"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/enclave"
	"dcert/internal/node"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// segRig is a fully seeded issuer + miner pair over the same deterministic
// genesis: every byte it produces — headers, certificates, interlinks — is
// identical across runs, which is what lets the golden tests pin digests as
// constants. Blocks are mined EMPTY (the workload generator's random account
// keys are the only nondeterminism in the stack).
type segRig struct {
	ci     *Issuer
	miner  *node.Miner
	auth   *attest.Authority
	params consensus.Params
}

func newSegRig(t testing.TB, seed string) *segRig {
	t.Helper()
	authority, err := attest.NewAuthorityFromSeed([]byte(seed))
	if err != nil {
		t.Fatalf("NewAuthorityFromSeed: %v", err)
	}
	platform, err := authority.NewPlatformFromSeed([]byte(seed))
	if err != nil {
		t.Fatalf("NewPlatformFromSeed: %v", err)
	}
	params := consensus.Params{Difficulty: 4}
	mkNode := func() *node.FullNode {
		reg := vm.NewRegistry()
		if err := workload.Register(reg, workload.KVStore, 3); err != nil {
			t.Fatalf("Register: %v", err)
		}
		genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params})
		if err != nil {
			t.Fatalf("BuildGenesis: %v", err)
		}
		n, err := node.NewFullNode(genesis, db, reg, params)
		if err != nil {
			t.Fatalf("NewFullNode: %v", err)
		}
		return n
	}
	ci, err := NewIssuerFromSeed(mkNode(), authority, platform, enclave.CostModel{}, []byte(seed))
	if err != nil {
		t.Fatalf("NewIssuerFromSeed: %v", err)
	}
	return &segRig{ci: ci, miner: node.NewMiner(mkNode()), auth: authority, params: params}
}

func (r *segRig) client() *SuperlightClient {
	return NewSuperlightClient(r.auth.PublicKey(), r.ci.Measurement(), r.params)
}

// mineEmpty proposes n deterministic empty blocks.
func (r *segRig) mineEmpty(t testing.TB, n int) []*chain.Block {
	t.Helper()
	blks := make([]*chain.Block, n)
	for i := range blks {
		b, err := r.miner.Propose(nil)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		blks[i] = b
	}
	return blks
}

// TestSegmentDigestK1Identity pins the identity the whole compatibility story
// rests on: the segment digest of a single header IS the block digest.
func TestSegmentDigestK1Identity(t *testing.T) {
	h := &chain.Header{Height: 7, Time: 42, PrevHash: chash.Leaf([]byte("prev"))}
	if SegmentDigest([]*chain.Header{h}) != BlockDigest(h) {
		t.Fatal("SegmentDigest of one header must equal BlockDigest")
	}
	h2 := &chain.Header{Height: 8, Time: 43, PrevHash: h.Hash()}
	if SegmentDigest([]*chain.Header{h, h2}) == BlockDigest(h) {
		t.Fatal("multi-header segment digest must differ from any block digest")
	}
}

// TestSegmentK1ByteIdentity drives two issuers built from one seed over the
// same blocks — one through the pre-segment ProcessBlock, one through
// one-block ProcessSegment calls — and requires byte-identical certificates
// at every height. K=1 is not a compatible mode; it is the same bytes.
func TestSegmentK1ByteIdentity(t *testing.T) {
	const seed = "segment-k1-v1"
	a := newSegRig(t, seed)
	b := newSegRig(t, seed)
	blks := a.mineEmpty(t, 5)

	for i, blk := range blks {
		certA, _, err := a.ci.ProcessBlock(blk)
		if err != nil {
			t.Fatalf("ProcessBlock(%d): %v", i, err)
		}
		segB, _, err := b.ci.ProcessSegment([]*chain.Block{blk})
		if err != nil {
			t.Fatalf("ProcessSegment(%d): %v", i, err)
		}
		if !bytes.Equal(certA.Marshal(), segB.Cert.Marshal()) {
			t.Fatalf("height %d: one-block segment certificate differs from single-block certificate", blk.Header.Height)
		}
		// The one-block segment is fully consumable by the unchanged
		// per-block client path.
		if err := a.client().ValidateChain(segB.Tip(), segB.Cert); err != nil {
			t.Fatalf("ValidateChain on segment cert: %v", err)
		}
	}
}

// Golden digests captured from the deterministic seeded rig (print with
// DCERT_PRINT_GOLDEN=1). They pin, across refactors:
//   - seg_k1_cert:   the single-block certificate bytes (K=1 compatibility),
//   - seg_k4_wire:   the full K=4 SegmentCert wire encoding, interlink
//     included — deployed clients parse exactly these bytes.
var goldenSegmentDigests = map[string]string{
	"seg_k1_cert": "1627b0536e858b67436e7032ffaa9bfb14fc0b3ee718bd505cf6d4f635416b8c",
	"seg_k4_wire": "33fbd65f2a33bcfda7890522fc9e54bb7e708cb8ae95d365d945d986acc2d933",
}

func segmentGoldenVectors(t *testing.T) map[string]string {
	t.Helper()
	const seed = "segment-golden-v1"

	k1 := newSegRig(t, seed)
	cert, _, err := k1.ci.ProcessBlock(k1.mineEmpty(t, 1)[0])
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}

	k4 := newSegRig(t, seed)
	blks := k4.mineEmpty(t, 8)
	if _, _, err := k4.ci.ProcessSegment(blks[:4]); err != nil {
		t.Fatalf("ProcessSegment[1,4]: %v", err)
	}
	// The second segment has a non-trivial interlink (levels back to
	// genesis), so its pin covers the interlink encoding too.
	seg, _, err := k4.ci.ProcessSegment(blks[4:])
	if err != nil {
		t.Fatalf("ProcessSegment[5,8]: %v", err)
	}
	if err := k4.client().ValidateSegment(seg); err != nil {
		t.Fatalf("ValidateSegment: %v", err)
	}

	digest := func(raw []byte) string {
		sum := chash.Sum(chash.DomainNode, raw)
		return hex.EncodeToString(sum.Bytes())
	}
	return map[string]string{
		"seg_k1_cert": digest(cert.Marshal()),
		"seg_k4_wire": digest(seg.Marshal()),
	}
}

func TestSegmentGoldenDigests(t *testing.T) {
	got := segmentGoldenVectors(t)
	if os.Getenv("DCERT_PRINT_GOLDEN") != "" {
		for name, d := range got {
			fmt.Printf("\t%q: %q,\n", name, d)
		}
	}
	for name, want := range goldenSegmentDigests {
		if got[name] != want {
			t.Errorf("%s: encoding drifted from golden vector\n got %s\nwant %s", name, got[name], want)
		}
	}
}

// TestSegmentCertRoundTrip: the wire encoding must round-trip canonically —
// parse, re-marshal, identical bytes — and the parsed segment must carry the
// interlink schedule InterlinkHeights prescribes.
func TestSegmentCertRoundTrip(t *testing.T) {
	r := newSegRig(t, "segment-roundtrip-v1")
	blks := r.mineEmpty(t, 8)
	if _, _, err := r.ci.ProcessSegment(blks[:4]); err != nil {
		t.Fatalf("ProcessSegment: %v", err)
	}
	seg, _, err := r.ci.ProcessSegment(blks[4:])
	if err != nil {
		t.Fatalf("ProcessSegment: %v", err)
	}
	raw := seg.Marshal()
	parsed, err := UnmarshalSegmentCert(raw)
	if err != nil {
		t.Fatalf("UnmarshalSegmentCert: %v", err)
	}
	if !bytes.Equal(parsed.Marshal(), raw) {
		t.Fatal("segment certificate does not round-trip canonically")
	}
	if err := r.client().ValidateSegment(parsed); err != nil {
		t.Fatalf("ValidateSegment(parsed): %v", err)
	}
	heights := InterlinkHeights(seg.Start())
	if len(parsed.Interlink) != len(heights) {
		t.Fatalf("interlink levels %d, schedule wants %d", len(parsed.Interlink), len(heights))
	}
	for l, h := range heights {
		blk, err := r.ci.Node().Store().AtHeight(h)
		if err != nil {
			t.Fatalf("AtHeight(%d): %v", h, err)
		}
		if parsed.Interlink[l] != blk.Hash() {
			t.Fatalf("interlink level %d does not point at certified height %d", l, h)
		}
	}
}

// TestUnmarshalSegmentCertBounds: adversarial count fields must fail fast,
// before any allocation proportional to the claimed count.
func TestUnmarshalSegmentCertBounds(t *testing.T) {
	huge := chash.NewEncoder(8)
	huge.PutUint32(1 << 30) // claimed headers far beyond maxSegmentBlocks
	if _, err := UnmarshalSegmentCert(huge.Bytes()); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("huge header count: want ErrBadSegment, got %v", err)
	}
	zero := chash.NewEncoder(8)
	zero.PutUint32(0)
	if _, err := UnmarshalSegmentCert(zero.Bytes()); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("zero header count: want ErrBadSegment, got %v", err)
	}
	if _, err := UnmarshalSegmentCert(nil); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("empty input: want ErrBadSegment, got %v", err)
	}
}

// TestSegmentedPipelineEquivalence is the segment analogue of
// TestPipelineEquivalence: the segmented pipeline must emit byte-identical
// segment certificates and the same final state root as sequential
// ProcessSegment calls over the same batches — while spending exactly one
// Ecall per segment.
func TestSegmentedPipelineEquivalence(t *testing.T) {
	const seed = "segment-pipe-v1"
	const numBlocks, segBlocks = 8, 4
	blks := mineBlocks(t, workload.KVStore, numBlocks, 5)

	seq := newSeededIssuer(t, workload.KVStore, seed)
	var seqCerts [][]byte
	for i := 0; i < numBlocks; i += segBlocks {
		seg, _, err := seq.ProcessSegment(blks[i : i+segBlocks])
		if err != nil {
			t.Fatalf("ProcessSegment: %v", err)
		}
		for range seg.Headers {
			seqCerts = append(seqCerts, seg.Cert.Marshal())
		}
	}
	seqRoot, err := seq.Node().State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}

	pipe := newSeededIssuer(t, workload.KVStore, seed)
	before := pipe.Enclave().Stats().Ecalls
	results, err := pipe.ProcessBlocksPipelined(blks, PipelineConfig{
		Workers: 3,
		Segment: &SegmentPolicy{MaxBlocks: segBlocks},
	})
	if err != nil {
		t.Fatalf("ProcessBlocksPipelined: %v", err)
	}
	ecalls := pipe.Enclave().Stats().Ecalls - before
	if want := uint64(numBlocks / segBlocks); ecalls != want {
		t.Fatalf("segment pipeline spent %d Ecalls, want %d (one per segment)", ecalls, want)
	}
	if len(results) != numBlocks {
		t.Fatalf("results %d, want %d", len(results), numBlocks)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("block %d: %v", i, res.Err)
		}
		if res.Segment == nil {
			t.Fatalf("block %d: no covering segment", i)
		}
		if !bytes.Equal(res.Cert.Marshal(), seqCerts[i]) {
			t.Fatalf("block %d: pipelined segment certificate differs from sequential", i)
		}
	}
	pipeRoot, err := pipe.Node().State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if pipeRoot != seqRoot {
		t.Fatal("pipelined and sequential final state roots differ")
	}
	if got, want := pipe.Node().Tip().Header.Height, seq.Node().Tip().Header.Height; got != want {
		t.Fatalf("tip height %d, want %d", got, want)
	}
}

// TestSegmentPipelineDeadline: the adaptive half of the batching policy — a
// partial batch must certify MaxDelay after its first block, without waiting
// for MaxBlocks or stream end.
func TestSegmentPipelineDeadline(t *testing.T) {
	r := newSegRig(t, "segment-deadline-v1")
	blks := r.mineEmpty(t, 3)
	pl, err := NewPipeline(r.ci, PipelineConfig{
		Workers: 2,
		Segment: &SegmentPolicy{MaxBlocks: 64, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	for _, blk := range blks {
		if err := pl.Submit(blk); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// No Close: only the deadline can flush. All three results must arrive.
	covered := make(map[uint64]bool)
	for i := 0; i < len(blks); i++ {
		select {
		case res := <-pl.Results():
			if res.Err != nil {
				t.Fatalf("result %d: %v", i, res.Err)
			}
			if res.Segment == nil {
				t.Fatalf("result %d: deadline flush produced no segment", i)
			}
			covered[res.Block.Header.Height] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("deadline flush never fired (got %d of %d results)", i, len(blks))
		}
	}
	pl.Close()
	if err := pl.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for h := uint64(1); h <= 3; h++ {
		if !covered[h] {
			t.Fatalf("height %d never certified", h)
		}
	}
}

// TestSegmentPipelineConfigRejected: segment batching is mutually exclusive
// with index fan-out, and MaxBlocks is bounded — both rejected before the
// pipeline claims the issuer, so the issuer stays usable.
func TestSegmentPipelineConfigRejected(t *testing.T) {
	r := newSegRig(t, "segment-config-v1")
	_, err := NewPipeline(r.ci, PipelineConfig{
		Segment:   &SegmentPolicy{MaxBlocks: 4},
		IndexJobs: mockIndexJobs([]string{"mock"}),
	})
	if !errors.Is(err, ErrBadSegment) {
		t.Fatalf("segment+index: want ErrBadSegment, got %v", err)
	}
	_, err = NewPipeline(r.ci, PipelineConfig{Segment: &SegmentPolicy{MaxBlocks: maxSegmentBlocks + 1}})
	if !errors.Is(err, ErrBadSegment) {
		t.Fatalf("oversized MaxBlocks: want ErrBadSegment, got %v", err)
	}
	// The rejections must not have latched the issuer.
	if _, _, err := r.ci.ProcessSegment(r.mineEmpty(t, 2)); err != nil {
		t.Fatalf("issuer unusable after rejected configs: %v", err)
	}
}

// TestProcessSegmentRollback: a failed segment must leave the replica exactly
// at its certified tip — proven by certifying the same blocks successfully
// right after the failure.
func TestProcessSegmentRollback(t *testing.T) {
	blks := mineBlocks(t, workload.KVStore, 4, 5)
	ci := newSeededIssuer(t, workload.KVStore, "segment-rollback-v1")
	// Blocks 2.. do not extend the tip: prepare speculatively commits block 2's
	// writes, then the Ecall refutes the linkage and everything rolls back.
	if _, _, err := ci.ProcessSegment(blks[1:]); err == nil {
		t.Fatal("segment not extending the tip must fail")
	}
	seg, _, err := ci.ProcessSegment(blks)
	if err != nil {
		t.Fatalf("ProcessSegment after rollback: %v", err)
	}
	if seg.Start() != 1 || seg.End() != 4 {
		t.Fatalf("segment covers [%d,%d], want [1,4]", seg.Start(), seg.End())
	}
	// Byte-level proof the rollback was exact: a fresh issuer from the same
	// seed that never saw the failure signs the identical segment.
	fresh := newSeededIssuer(t, workload.KVStore, "segment-rollback-v1")
	segF, _, err := fresh.ProcessSegment(blks)
	if err != nil {
		t.Fatalf("fresh ProcessSegment: %v", err)
	}
	if !bytes.Equal(seg.Cert.Marshal(), segF.Cert.Marshal()) {
		t.Fatal("post-rollback certificate differs from a clean run")
	}
}

// TestValidateSegmentRejects covers the client-side refusal paths: tampered
// interlink hints, broken linkage, tampered headers, and the chain rule.
func TestValidateSegmentRejects(t *testing.T) {
	r := newSegRig(t, "segment-reject-v1")
	blks := r.mineEmpty(t, 8)
	if _, _, err := r.ci.ProcessSegment(blks[:4]); err != nil {
		t.Fatalf("ProcessSegment: %v", err)
	}
	seg, _, err := r.ci.ProcessSegment(blks[4:])
	if err != nil {
		t.Fatalf("ProcessSegment: %v", err)
	}

	copySeg := func() *SegmentCert {
		return &SegmentCert{
			Headers:   append([]*chain.Header(nil), seg.Headers...),
			Cert:      seg.Cert,
			Interlink: append([]chash.Hash(nil), seg.Interlink...),
		}
	}

	// The level-0 hint disagreeing with the signed PrevHash is a tampered
	// interlink, full stop.
	bad := copySeg()
	bad.Interlink[0] = chash.Leaf([]byte("forged"))
	if err := r.client().ValidateSegment(bad); !errors.Is(err, ErrBadInterlink) {
		t.Fatalf("tampered level-0 interlink: want ErrBadInterlink, got %v", err)
	}

	// Reordered headers break the internal linkage.
	bad = copySeg()
	bad.Headers[1], bad.Headers[2] = bad.Headers[2], bad.Headers[1]
	if err := r.client().ValidateSegment(bad); err == nil {
		t.Fatal("reordered headers accepted")
	}

	// A tampered header field breaks the certified segment digest.
	bad = copySeg()
	hdr := *bad.Headers[1]
	hdr.Time++
	bad.Headers[1] = &hdr
	if err := r.client().ValidateSegment(bad); err == nil {
		t.Fatal("tampered header accepted")
	}

	// Truncating the segment changes the digest the certificate signed.
	bad = copySeg()
	bad.Headers = bad.Headers[:3]
	if err := r.client().ValidateSegment(bad); err == nil {
		t.Fatal("truncated segment accepted")
	}

	// Chain rule: a valid segment does not re-validate onto its own tip.
	cl := r.client()
	if err := cl.ValidateSegment(seg); err != nil {
		t.Fatalf("ValidateSegment: %v", err)
	}
	if err := cl.ValidateSegment(seg); !errors.Is(err, ErrChainRule) {
		t.Fatalf("re-validated segment: want ErrChainRule, got %v", err)
	}
}

// TestSegmentSnapshotRestore: a client whose tip came from a multi-block
// segment must snapshot and restore through the full verification path, and
// single-block snapshots must keep their pre-segment format (no trailing
// field).
func TestSegmentSnapshotRestore(t *testing.T) {
	r := newSegRig(t, "segment-snapshot-v1")
	blks := r.mineEmpty(t, 5)

	// Single-block tip first: the snapshot must carry exactly header+cert.
	cert, _, err := r.ci.ProcessBlock(blks[0])
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	cl := r.client()
	if err := cl.ValidateChain(&blks[0].Header, cert); err != nil {
		t.Fatalf("ValidateChain: %v", err)
	}
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	legacy := chash.NewEncoder(len(snap))
	legacy.PutBytes(blks[0].Header.Marshal())
	legacy.PutBytes(cert.Marshal())
	if !bytes.Equal(snap, legacy.Bytes()) {
		t.Fatal("single-block snapshot is not byte-identical to the pre-segment format")
	}

	// Segment tip: snapshot must round-trip through Restore's verification.
	seg, _, err := r.ci.ProcessSegment(blks[1:])
	if err != nil {
		t.Fatalf("ProcessSegment: %v", err)
	}
	if err := cl.ValidateSegment(seg); err != nil {
		t.Fatalf("ValidateSegment: %v", err)
	}
	snap, err = cl.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored := r.client()
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	hdr, _ := restored.Latest()
	if hdr == nil || hdr.Hash() != seg.Tip().Hash() {
		t.Fatal("restored client does not sit on the segment tip")
	}
	// Corrupting signed content (a header byte) must fail restore. The very
	// tail of the snapshot is a high-level interlink hash — an unsigned
	// routing hint — so the probe targets the header region, not the tail.
	snap[10] ^= 0xff
	if err := r.client().Restore(snap); err == nil {
		t.Fatal("corrupted segment snapshot accepted")
	}
	snap[10] ^= 0xff
	if err := r.client().Restore(snap[:len(snap)-1]); err == nil {
		t.Fatal("truncated segment snapshot accepted")
	}
}

// TestBootstrapSublinear is the sublinear catch-up regression: on a
// 10 000-block chain certified in 16-block segments, a stale client must
// reach the tip from the genesis anchor in O(log n) certificate fetches, the
// analytic model must match the measured walk exactly, and a forged interlink
// pointer must be refuted.
func TestBootstrapSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-block chain")
	}
	const chainLen, segBlocks = 10_000, 16
	r := newSegRig(t, "segment-bootstrap-v1")
	blks := r.mineEmpty(t, chainLen)
	for i := 0; i < chainLen; i += segBlocks {
		if _, _, err := r.ci.ProcessSegment(blks[i : i+segBlocks]); err != nil {
			t.Fatalf("ProcessSegment at %d: %v", i, err)
		}
	}
	tip := r.ci.LatestSegment()
	if tip == nil || tip.End() != chainLen {
		t.Fatalf("no tip segment at height %d", chainLen)
	}
	genesis := r.ci.Node().Store().Genesis()

	fetched := 0
	fetch := func(height uint64) (*SegmentCert, error) {
		fetched++
		seg := r.ci.SegmentCovering(height)
		if seg == nil {
			return nil, fmt.Errorf("%w: height %d", ErrSegmentUnavailable, height)
		}
		return seg, nil
	}

	cl := r.client()
	fetches, err := cl.BootstrapSublinear(fetch, tip, 0, genesis)
	if err != nil {
		t.Fatalf("BootstrapSublinear: %v", err)
	}
	if fetches != fetched {
		t.Fatalf("reported %d fetches, fetcher saw %d", fetches, fetched)
	}
	// The sublinear bound: c·log2(n) with c=3 — generous against the walk's
	// ≤ log2(n)+1 design bound, tight against the linear follower's
	// n/segBlocks = 625 validations.
	logN := bits.Len64(chainLen) // ⌈log2⌉+ for n=10k: 14
	if fetches > 3*logN {
		t.Fatalf("bootstrap took %d fetches, want ≤ %d (3·log2 n)", fetches, 3*logN)
	}
	if model := ModelBootstrapFetches(chainLen, segBlocks); fetches != model {
		t.Fatalf("measured %d fetches, model predicts %d — model drifted from the walk", fetches, model)
	}
	hdr, _ := cl.Latest()
	if hdr == nil || hdr.Height != chainLen {
		t.Fatal("bootstrap did not adopt the tip")
	}

	// Bootstrapping from a mid-chain trusted anchor also converges.
	anchorBlk, err := r.ci.Node().Store().AtHeight(7_321)
	if err != nil {
		t.Fatalf("AtHeight: %v", err)
	}
	midFetches, err := r.client().BootstrapSublinear(fetch, tip, 7_321, anchorBlk.Hash())
	if err != nil {
		t.Fatalf("BootstrapSublinear(mid anchor): %v", err)
	}
	if midFetches > 3*logN {
		t.Fatalf("mid-anchor bootstrap took %d fetches, want ≤ %d", midFetches, 3*logN)
	}

	// A forged high-level interlink pointer is refuted at the first hop that
	// uses it: the fetched segment's certified header hash disagrees.
	forged := &SegmentCert{
		Headers:   tip.Headers,
		Cert:      tip.Cert,
		Interlink: append([]chash.Hash(nil), tip.Interlink...),
	}
	for l := 1; l < len(forged.Interlink); l++ {
		forged.Interlink[l] = chash.Leaf([]byte("forged-pointer"))
	}
	if _, err := r.client().BootstrapSublinear(fetch, forged, 0, genesis); !errors.Is(err, ErrBadInterlink) {
		t.Fatalf("forged interlink: want ErrBadInterlink, got %v", err)
	}

	// A wrong anchor hash must be refuted, not adopted.
	if _, err := r.client().BootstrapSublinear(fetch, tip, 0, chash.Leaf([]byte("wrong-genesis"))); !errors.Is(err, ErrBadInterlink) {
		t.Fatalf("wrong anchor: want ErrBadInterlink, got %v", err)
	}
}

// TestModelBootstrapFetchesScaling pins the model's asymptotic shape at the
// scales BENCH_certify.json reports: fetch counts must grow like log n, not
// like n.
func TestModelBootstrapFetchesScaling(t *testing.T) {
	for _, tc := range []struct{ n uint64 }{{1_000}, {10_000}, {100_000}} {
		got := ModelBootstrapFetches(tc.n, 16)
		bound := 3 * bits.Len64(tc.n)
		if got == 0 || got > bound {
			t.Fatalf("ModelBootstrapFetches(%d, 16) = %d, want in (0, %d]", tc.n, got, bound)
		}
	}
	if a, b := ModelBootstrapFetches(10_000, 16), ModelBootstrapFetches(100_000, 16); b > 3*a {
		t.Fatalf("10× chain grew fetches %d→%d — not sublinear", a, b)
	}
}
