package statedb

import (
	"bytes"
	"errors"
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/smt"
	"dcert/internal/vm"
)

// The sparse-Merkle-tree state backend implements the paper's Fig. 4 flow
// literally: the state commitment is a fixed-depth binary SMT over hashed
// keys, the update proof carries the explicit prior-value set {r} with one
// combined multiproof (π_r ∪ π_w), and the enclave recomputes the new root
// by substituting written leaves into the proof. It exists alongside the
// default MPT backend so the two commitment designs can be compared (the
// MPT-vs-SMT ablation).

// ErrUnprovenRead is returned when enclave-side replay reads a key outside
// the declared prior-value set.
var ErrUnprovenRead = errors.New("statedb: read outside declared prior set")

// BackendKind selects the state-commitment structure.
type BackendKind byte

// Supported backends.
const (
	// BackendMPT is the Merkle Patricia Trie (Ethereum-style, the default).
	BackendMPT BackendKind = iota + 1
	// BackendSMT is the fixed-depth sparse Merkle tree of Fig. 4.
	BackendSMT
)

// String implements fmt.Stringer.
func (k BackendKind) String() string {
	switch k {
	case BackendMPT:
		return "mpt"
	case BackendSMT:
		return "smt"
	default:
		return fmt.Sprintf("BackendKind(%d)", byte(k))
	}
}

// smtStateDepth is the SMT depth for state commitments: 64 bits keeps paths
// short while making key collisions negligible for realistic state sizes.
const smtStateDepth = 64

// valueDigest is the SMT leaf digest of a state value.
func valueDigest(v []byte) chash.Hash {
	if v == nil {
		return chash.Zero
	}
	return chash.Leaf(v)
}

// smtState is the SMT-backed half of DB.
type smtState struct {
	tree   *smt.Tree
	values map[string][]byte
}

func newSMTState() (*smtState, error) {
	tree, err := smt.New(smtStateDepth)
	if err != nil {
		return nil, err
	}
	return &smtState{tree: tree, values: make(map[string][]byte)}, nil
}

func (s *smtState) get(key []byte) ([]byte, error) {
	return s.values[string(key)], nil
}

// del removes a key: the leaf digest returns to the SMT's empty marker
// (chash.Zero), exactly the absent-key encoding valueDigest uses.
func (s *smtState) del(key []byte) {
	if _, ok := s.values[string(key)]; !ok {
		return
	}
	delete(s.values, string(key))
	s.tree.Put(smt.KeyFromBytes(key), chash.Zero)
}

func (s *smtState) set(key, value []byte) error {
	if len(value) == 0 {
		return fmt.Errorf("statedb: empty value for %q", key)
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.values[string(key)] = cp
	s.tree.Put(smt.KeyFromBytes(key), valueDigest(cp))
	return nil
}

// updateProofSMT builds the SMT update proof: the prior values of every
// touched key plus one multiproof covering them all.
func (s *smtState) updateProof(res *ExecResult) (*UpdateProof, error) {
	prior := make(map[string][]byte, len(res.ReadSet)+len(res.WriteSet))
	keys := make([]smt.Key, 0, len(res.ReadSet)+len(res.WriteSet))
	add := func(k string) {
		if _, ok := prior[k]; ok {
			return
		}
		prior[k] = s.values[k]
		keys = append(keys, smt.KeyFromBytes([]byte(k)))
	}
	for k := range res.ReadSet {
		add(k)
	}
	for k := range res.WriteSet {
		add(k)
	}
	if len(keys) == 0 {
		// Block touches no state: a proof over a sentinel key keeps the
		// structure uniform (and proves the sentinel absent).
		add("\x00dcert/empty-block-sentinel")
	}
	proof, err := s.tree.Prove(keys)
	if err != nil {
		return nil, fmt.Errorf("statedb: smt proof: %w", err)
	}
	reads := make(map[string][]byte, len(res.ReadSet))
	for k, v := range res.ReadSet {
		reads[k] = v
	}
	return &UpdateProof{Kind: BackendSMT, ReadSet: reads, Prior: prior, SMT: proof}, nil
}

// replaySMT is the enclave-side SMT replay: verify {r}∪prior against π, re-
// execute, substitute written leaves, and recompute the root (Alg. 2 lines
// 17-23 in their original SMT formulation).
func replaySMT(prevRoot chash.Hash, proof *UpdateProof, reg *vm.Registry, txs []*chain.Transaction, preverified bool) (chash.Hash, map[string][]byte, error) {
	if proof.SMT == nil {
		return chash.Zero, nil, fmt.Errorf("%w: missing SMT proof", ErrReadSetMismatch)
	}
	// Map proof keys back to state keys and assemble the old digests.
	keyOf := make(map[smt.Key]string, len(proof.Prior))
	oldDigests := make(map[smt.Key]chash.Hash, len(proof.Prior))
	for k, v := range proof.Prior {
		sk := smt.KeyFromBytes([]byte(k))
		keyOf[sk] = k
		oldDigests[sk] = valueDigest(v)
	}
	// verify_mht(H_{i-1}^s, π, prior): the prior set is authenticated.
	if err := proof.SMT.Verify(prevRoot, oldDigests); err != nil {
		return chash.Zero, nil, fmt.Errorf("%w: %v", ErrReadSetMismatch, err)
	}
	// The declared read set must be consistent with the proven prior set.
	for k, declared := range proof.ReadSet {
		prior, ok := proof.Prior[k]
		if !ok || !bytes.Equal(prior, declared) {
			return chash.Zero, nil, fmt.Errorf("%w: read %q", ErrReadSetMismatch, k)
		}
	}

	// Re-execute against the proven prior values only.
	o := newOverlay(func(key []byte) ([]byte, error) {
		v, ok := proof.Prior[string(key)]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnprovenRead, key)
		}
		return v, nil
	})
	if _, err := runTxsOpts(reg, o, txs, preverified); err != nil {
		return chash.Zero, nil, err
	}

	// update(π, {w}): substitute the written leaves.
	newDigests := make(map[smt.Key]chash.Hash, len(oldDigests))
	for sk, d := range oldDigests {
		newDigests[sk] = d
	}
	for k, v := range o.writes {
		sk := smt.KeyFromBytes([]byte(k))
		if _, ok := keyOf[sk]; !ok {
			return chash.Zero, nil, fmt.Errorf("%w: write %q", ErrUnprovenRead, k)
		}
		newDigests[sk] = valueDigest(v)
	}
	newRoot, err := proof.SMT.ComputeRoot(newDigests)
	if err != nil {
		return chash.Zero, nil, fmt.Errorf("statedb: smt update: %w", err)
	}
	return newRoot, o.writes, nil
}
