package query

import (
	"sort"
	"strings"
	"unicode"

	"dcert/internal/chain"
)

// NewHistoricalIndex builds the historical-account index of Fig. 5: for
// every state key matched by prefix (empty = all keys), each block that
// writes the key appends an entry (version = block height, value = written
// state value) to the key's lower tree. Superlight clients can then ask
// "what were the values of key K in time window [t1, t2]" with integrity and
// completeness guarantees.
func NewHistoricalIndex(name, prefix string) (*TwoLevel, error) {
	return NewTwoLevel(name, HistoricalExtractor(prefix))
}

// HistoricalExtractor derives historical-index insertions from a block's
// verified state write set.
func HistoricalExtractor(prefix string) Extractor {
	return func(blk *chain.Block, writes map[string][]byte) []Insertion {
		ins := make([]Insertion, 0, len(writes))
		for k, v := range writes {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			ins = append(ins, Insertion{Key: k, Version: blk.Header.Height, Value: v})
		}
		sortInsertions(ins)
		return ins
	}
}

// txSlotBits positions a transaction index within a posting version so that
// (height, txIndex) pairs order correctly and stay unique.
const txSlotBits = 20

// PostingVersion encodes a (height, txIndex) pair as a lower-tree version.
func PostingVersion(height uint64, txIndex int) uint64 {
	return height<<txSlotBits | uint64(txIndex)
}

// PostingHeight recovers the block height from a posting version.
func PostingHeight(v uint64) uint64 {
	return v >> txSlotBits
}

// NewKeywordIndex builds the inverted keyword index of §5.4: keywords are
// extracted from every transaction (contract name, method, and printable
// argument words); each keyword's lower tree accumulates postings
// (version = height‖txIndex, value = transaction hash). Conjunctive queries
// intersect per-keyword posting lists, each individually verified complete.
func NewKeywordIndex(name string) (*TwoLevel, error) {
	return NewTwoLevel(name, KeywordExtractor())
}

// KeywordExtractor derives keyword-index insertions from a block's
// transactions.
func KeywordExtractor() Extractor {
	return func(blk *chain.Block, _ map[string][]byte) []Insertion {
		var ins []Insertion
		for i, tx := range blk.Txs {
			txHash := tx.Hash()
			version := PostingVersion(blk.Header.Height, i)
			for _, kw := range Keywords(tx) {
				ins = append(ins, Insertion{Key: kw, Version: version, Value: txHash.Bytes()})
			}
		}
		sortInsertions(ins)
		return ins
	}
}

// Keywords extracts the deterministic keyword set of a transaction: its
// contract name, its method, and every printable word (≥3 runes) appearing
// in its arguments. The set is sorted and deduplicated.
func Keywords(tx *chain.Transaction) []string {
	set := map[string]struct{}{
		tx.Contract: {},
		tx.Method:   {},
	}
	for _, arg := range tx.Args {
		for _, w := range tokenize(arg) {
			set[w] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// tokenize splits a byte slice into printable lowercase words.
func tokenize(b []byte) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() >= 3 {
			words = append(words, strings.ToLower(cur.String()))
		}
		cur.Reset()
	}
	for _, r := range string(b) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
			continue
		}
		flush()
	}
	flush()
	return words
}
