package dcert

import (
	"fmt"

	"dcert/internal/query"
	"dcert/internal/query/fleet"
)

// The sharded serving plane (internal/query/fleet): a deployment can scale
// its query side from one SP to N replicas behind a consistent-hash router.
// Every replica ingests every mined block (the write path is one block per
// round), while queries split by key affinity — each replica owns a stable
// ~1/N slice of the key space and serves it from a warm byte-bounded cache
// with singleflight collapsing. Both serving doors route through the fleet
// once it is started: the in-process fabric (ServeFleetQueries) and the TCP
// wire transport (ServeWire's query route).

// Fleet types (package internal/query/fleet).
type (
	// QueryFleet is the sharded serving plane.
	QueryFleet = fleet.Fleet
	// QueryReplica is one serving shard.
	QueryReplica = fleet.Replica
	// FleetRouter is the rendezvous-hashing consistent router.
	FleetRouter = fleet.Router
	// FleetBusServer serves the query topic across the fleet's replicas.
	FleetBusServer = fleet.BusServer
)

// StartFleet builds an n-replica serving fleet for the deployment. Each
// replica is an independent full node with its own copy of every index
// registered via AddIndex, caught up to the current chain tip. Once the
// fleet exists, every subsequently mined block feeds it, and ServeWire's
// query route answers through it. Replicas join the deployment's metrics
// registry if observability is enabled.
//
// Call StartFleet after registering indexes; added indexes do not propagate
// to an already-started fleet.
func (d *Deployment) StartFleet(n int) (*QueryFleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("dcert: fleet needs at least 1 replica")
	}
	if d.fleet.Load() != nil {
		return nil, fmt.Errorf("dcert: fleet already started")
	}
	f := fleet.New()
	store := d.miner.Store()
	best := store.BestHeight()
	for i := 0; i < n; i++ {
		node, err := d.cfg.newFullNode(d.params)
		if err != nil {
			return nil, fmt.Errorf("dcert: fleet replica %d: %w", i, err)
		}
		sp := query.NewServiceProvider(node)
		for _, mk := range d.indexFactories {
			ix, err := mk()
			if err != nil {
				return nil, fmt.Errorf("dcert: fleet replica %d index: %w", i, err)
			}
			if err := sp.AddIndex(ix); err != nil {
				return nil, fmt.Errorf("dcert: fleet replica %d index: %w", i, err)
			}
		}
		// Catch the replica up to the tip before it starts serving.
		for h := uint64(1); h <= best; h++ {
			blk, err := store.AtHeight(h)
			if err != nil {
				return nil, fmt.Errorf("dcert: fleet replica %d catch-up: %w", i, err)
			}
			if err := sp.ProcessBlock(blk); err != nil {
				return nil, fmt.Errorf("dcert: fleet replica %d catch-up height %d: %w", i, h, err)
			}
		}
		rep, err := fleet.NewReplica(fmt.Sprintf("sp-%d", i), sp, query.DefaultCacheBytes)
		if err != nil {
			return nil, fmt.Errorf("dcert: fleet replica %d: %w", i, err)
		}
		if err := f.Add(rep); err != nil {
			return nil, err
		}
	}
	if d.reg != nil {
		f.Instrument(d.reg)
	}
	d.fleet.Store(f)
	return f, nil
}

// Fleet returns the serving fleet (nil until StartFleet).
func (d *Deployment) Fleet() *QueryFleet {
	return d.fleet.Load()
}

// ServeFleetQueries runs the fleet behind the deployment's fabric query
// topic with the given per-replica worker count (0 = default). It replaces
// the single-SP query server — do not run both on one fabric, or every
// request is answered twice.
func (d *Deployment) ServeFleetQueries(workers int) (*FleetBusServer, error) {
	f := d.fleet.Load()
	if f == nil {
		return nil, fmt.Errorf("dcert: no fleet (call StartFleet first)")
	}
	return f.ServeBus(d.net, workers), nil
}

// feedServing advances the serving plane one block: the primary SP always,
// plus every fleet replica once a fleet is started.
func (d *Deployment) feedServing(blk *Block) error {
	if err := d.sp.ProcessBlock(blk); err != nil {
		return err
	}
	if f := d.fleet.Load(); f != nil {
		return f.ProcessBlock(blk)
	}
	return nil
}
