// Package chain defines the block structure of the underlying blockchain
// (Fig. 1 of the DCert paper): headers with previous-hash, consensus proof,
// state root and transaction root; signed transactions; and blocks. It also
// provides a chain store with the longest-chain selection rule.
//
// DCert is designed to be compatible with existing blockchains, so nothing
// in this package knows about certificates; the core package layers
// certification on top without modifying these structures.
package chain

import (
	"errors"
	"fmt"

	"dcert/internal/chash"
	"dcert/internal/mht"
)

// Package errors.
var (
	// ErrBadTx is returned when a transaction fails validation.
	ErrBadTx = errors.New("chain: invalid transaction")
	// ErrBadBlock is returned when a block fails structural validation.
	ErrBadBlock = errors.New("chain: invalid block")
	// ErrUnknownParent is returned when a block's parent is not in the store.
	ErrUnknownParent = errors.New("chain: unknown parent block")
	// ErrNotFound is returned when a block is not in the store.
	ErrNotFound = errors.New("chain: block not found")
)

// AddressSize is the byte length of account addresses.
const AddressSize = 20

// Address identifies an account: the truncated digest of its public key.
type Address [AddressSize]byte

// AddressOf derives the address of a public key.
func AddressOf(pk *chash.PublicKey) Address {
	fp := pk.Fingerprint()
	var a Address
	copy(a[:], fp[:AddressSize])
	return a
}

// Hex returns the lowercase hex form of the address.
func (a Address) Hex() string {
	return fmt.Sprintf("%x", a[:])
}

// ConsensusProof is π_cons: the data a consensus protocol attaches to a
// header. For the simulated proof-of-work protocol it is a nonce that makes
// the header's work hash meet the difficulty target.
type ConsensusProof struct {
	// Nonce is the proof-of-work nonce.
	Nonce uint64
	// Difficulty is the number of leading zero bits the work hash must have.
	Difficulty uint32
}

// Header is the block header of Fig. 1.
type Header struct {
	// Height is the block number; the genesis block has height 0.
	Height uint64
	// PrevHash is H_prev_blk, the digest of the previous header.
	PrevHash chash.Hash
	// StateRoot is H_state, the state commitment after executing the block.
	StateRoot chash.Hash
	// TxRoot is H_tx, the Merkle root over the block's transactions.
	TxRoot chash.Hash
	// Time is the block timestamp in Unix seconds.
	Time uint64
	// Consensus is π_cons.
	Consensus ConsensusProof
}

// preimage builds the canonical header encoding.
func (h *Header) preimage() []byte {
	e := chash.NewEncoder(128)
	e.PutUint64(h.Height)
	e.PutHash(h.PrevHash)
	e.PutHash(h.StateRoot)
	e.PutHash(h.TxRoot)
	e.PutUint64(h.Time)
	e.PutUint64(h.Consensus.Nonce)
	e.PutUint32(h.Consensus.Difficulty)
	return e.Bytes()
}

// Hash returns the header digest H(hdr).
func (h *Header) Hash() chash.Hash {
	return chash.Sum(chash.DomainHeader, h.preimage())
}

// Marshal serializes the header.
func (h *Header) Marshal() []byte {
	return h.preimage()
}

// UnmarshalHeader parses a header produced by Marshal.
func UnmarshalHeader(raw []byte) (*Header, error) {
	d := chash.NewDecoder(raw)
	var h Header
	var err error
	if h.Height, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	if h.PrevHash, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	if h.StateRoot, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	if h.TxRoot, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	if h.Time, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	if h.Consensus.Nonce, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	if h.Consensus.Difficulty, err = d.Uint32(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal header: %w", err)
	}
	return &h, nil
}

// EncodedSize returns the serialized header size in bytes.
func (h *Header) EncodedSize() int {
	return len(h.preimage())
}

// Transaction is a signed smart-contract invocation.
type Transaction struct {
	// From is the sender address (must match the public key).
	From Address
	// Nonce distinguishes repeated invocations by one sender.
	Nonce uint64
	// Contract names the target contract instance.
	Contract string
	// Method is the contract entry point.
	Method string
	// Args are the call arguments.
	Args [][]byte
	// PubKey is the sender's serialized public key.
	PubKey []byte
	// Signature signs the transaction digest with the sender's key.
	Signature []byte
}

// sigPreimage encodes the fields covered by the signature.
func (tx *Transaction) sigPreimage() []byte {
	e := chash.NewEncoder(128)
	e.PutBytes(tx.From[:])
	e.PutUint64(tx.Nonce)
	e.PutString(tx.Contract)
	e.PutString(tx.Method)
	e.PutUint32(uint32(len(tx.Args)))
	for _, a := range tx.Args {
		e.PutBytes(a)
	}
	return e.Bytes()
}

// SigHash returns the digest the sender signs.
func (tx *Transaction) SigHash() chash.Hash {
	return chash.Sum(chash.DomainTx, tx.sigPreimage())
}

// Hash returns the full transaction digest (including signature), used as
// the Merkle leaf for H_tx.
func (tx *Transaction) Hash() chash.Hash {
	return chash.Sum(chash.DomainTx, tx.Marshal())
}

// Sign populates From, PubKey, and Signature from the sender's key.
func (tx *Transaction) Sign(sk *chash.PrivateKey) error {
	pk, err := sk.Public()
	if err != nil {
		return fmt.Errorf("chain: sign tx: %w", err)
	}
	tx.From = AddressOf(pk)
	tx.PubKey = pk.Marshal()
	sig, err := sk.Sign(tx.SigHash())
	if err != nil {
		return fmt.Errorf("chain: sign tx: %w", err)
	}
	tx.Signature = sig
	return nil
}

// Verify checks the sender address binding and the signature. This is the
// verify(tx) step of Alg. 2 line 19.
func (tx *Transaction) Verify() error {
	pk, err := chash.ParsePublicKey(tx.PubKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadTx, err)
	}
	if AddressOf(pk) != tx.From {
		return fmt.Errorf("%w: sender address does not match public key", ErrBadTx)
	}
	if err := pk.Verify(tx.SigHash(), tx.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTx, err)
	}
	return nil
}

// Marshal serializes the transaction.
func (tx *Transaction) Marshal() []byte {
	e := chash.NewEncoder(256)
	e.PutBytes(tx.From[:])
	e.PutUint64(tx.Nonce)
	e.PutString(tx.Contract)
	e.PutString(tx.Method)
	e.PutUint32(uint32(len(tx.Args)))
	for _, a := range tx.Args {
		e.PutBytes(a)
	}
	e.PutBytes(tx.PubKey)
	e.PutBytes(tx.Signature)
	return e.Bytes()
}

// UnmarshalTransaction parses a transaction produced by Marshal.
func UnmarshalTransaction(raw []byte) (*Transaction, error) {
	d := chash.NewDecoder(raw)
	var tx Transaction
	from, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	if len(from) != AddressSize {
		return nil, fmt.Errorf("chain: unmarshal tx: bad address length %d", len(from))
	}
	copy(tx.From[:], from)
	if tx.Nonce, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	if tx.Contract, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	if tx.Method, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	nArgs, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	if nArgs > 1<<16 {
		return nil, fmt.Errorf("chain: unmarshal tx: %d args", nArgs)
	}
	tx.Args = make([][]byte, 0, nArgs)
	for i := uint32(0); i < nArgs; i++ {
		a, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("chain: unmarshal tx arg %d: %w", i, err)
		}
		tx.Args = append(tx.Args, a)
	}
	if tx.PubKey, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	if tx.Signature, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal tx: %w", err)
	}
	return &tx, nil
}

// Block is a header plus its transactions.
type Block struct {
	// Header is the block header.
	Header Header
	// Txs are the block's transactions in execution order.
	Txs []*Transaction
}

// Hash returns the block's header digest.
func (b *Block) Hash() chash.Hash {
	return b.Header.Hash()
}

// ComputeTxRoot builds the Merkle root over the block's transactions
// (chash.Zero for an empty block).
func ComputeTxRoot(txs []*Transaction) (chash.Hash, error) {
	if len(txs) == 0 {
		return chash.Zero, nil
	}
	digests := make([]chash.Hash, len(txs))
	for i, tx := range txs {
		digests[i] = tx.Hash()
	}
	tree, err := mht.BuildFromDigests(digests)
	if err != nil {
		return chash.Zero, fmt.Errorf("chain: tx root: %w", err)
	}
	return tree.Root(), nil
}

// VerifyTxRoot checks H_tx against the block's transactions
// (Alg. 2 line 16).
func (b *Block) VerifyTxRoot() error {
	root, err := ComputeTxRoot(b.Txs)
	if err != nil {
		return err
	}
	if root != b.Header.TxRoot {
		return fmt.Errorf("%w: tx root mismatch", ErrBadBlock)
	}
	return nil
}

// Marshal serializes the block.
func (b *Block) Marshal() []byte {
	hdr := b.Header.Marshal()
	e := chash.NewEncoder(len(hdr) + 256*len(b.Txs))
	e.PutBytes(hdr)
	e.PutUint32(uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		e.PutBytes(tx.Marshal())
	}
	return e.Bytes()
}

// UnmarshalBlock parses a block produced by Marshal.
func UnmarshalBlock(raw []byte) (*Block, error) {
	d := chash.NewDecoder(raw)
	hdrRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("chain: unmarshal block: %w", err)
	}
	hdr, err := UnmarshalHeader(hdrRaw)
	if err != nil {
		return nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("chain: unmarshal block: %w", err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("chain: unmarshal block: %d txs", n)
	}
	b := &Block{Header: *hdr, Txs: make([]*Transaction, 0, n)}
	for i := uint32(0); i < n; i++ {
		txRaw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("chain: unmarshal block tx %d: %w", i, err)
		}
		tx, err := UnmarshalTransaction(txRaw)
		if err != nil {
			return nil, err
		}
		b.Txs = append(b.Txs, tx)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("chain: unmarshal block: %w", err)
	}
	return b, nil
}
