package mbtree

import (
	"fmt"
	"testing"
)

func FuzzUnmarshalWitness(f *testing.F) {
	tr := NewDefault()
	for i := uint64(0); i < 50; i++ {
		if err := tr.Insert(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			f.Fatalf("Insert: %v", err)
		}
	}
	w, err := tr.WitnessForRange(10, 20)
	if err != nil {
		f.Fatalf("WitnessForRange: %v", err)
	}
	f.Add(w.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 1, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if _, err := UnmarshalWitness(raw); err != nil {
			return
		}
	})
}

// FuzzVerifyRange stresses the verifier with mutated proofs: it must never
// panic, and whenever it succeeds the result set must match the real tree's.
func FuzzVerifyRange(f *testing.F) {
	tr := NewDefault()
	for i := uint64(0); i < 80; i++ {
		if err := tr.Insert(i*2, []byte(fmt.Sprintf("v%d", i))); err != nil {
			f.Fatalf("Insert: %v", err)
		}
	}
	root, err := tr.Root()
	if err != nil {
		f.Fatalf("Root: %v", err)
	}
	w, err := tr.WitnessForRange(20, 60)
	if err != nil {
		f.Fatalf("WitnessForRange: %v", err)
	}
	f.Add(w.Marshal(), uint64(20), uint64(60))
	f.Add(w.Marshal(), uint64(0), uint64(200))
	f.Fuzz(func(t *testing.T, raw []byte, lo, hi uint64) {
		if lo > hi {
			lo, hi = hi, lo
		}
		proof, err := UnmarshalWitness(raw)
		if err != nil {
			return
		}
		got, err := VerifyRange(DefaultOrder, root, lo, hi, proof)
		if err != nil {
			return
		}
		want, err := tr.Range(lo, hi)
		if err != nil {
			t.Fatalf("real Range: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("verified scan returned %d entries, real tree has %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Version != want[i].Version {
				t.Fatalf("entry %d version mismatch", i)
			}
		}
	})
}
