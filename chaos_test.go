package dcert_test

import (
	"testing"
	"time"

	"dcert"
)

// Chaos integration tests: drive a full multi-CI deployment through seeded
// fault plans — drops, duplicates, reordering, latency jitter, topic
// partitions, issuer crashes — and assert both safety (the client's tip was
// accepted through full certificate validation, so it matches the miner's
// chain exactly) and liveness (the client converges to the miner's tip).

// chaosRig is a deployment with a redundant certification plane and a
// followed superlight client.
type chaosRig struct {
	dep      *dcert.Deployment
	plane    *dcert.CertPlane
	client   *dcert.SuperlightClient
	follower *dcert.CertFollower
}

func newChaosRig(t *testing.T, seed int64, issuers int, plan *dcert.FaultPlan) (*chaosRig, func()) {
	return newChaosRigCost(t, seed, issuers, plan, dcert.EnclaveCostModel{})
}

func newChaosRigCost(t *testing.T, seed int64, issuers int, plan *dcert.FaultPlan, cost dcert.EnclaveCostModel) (*chaosRig, func()) {
	t.Helper()
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    dcert.KVStore,
		Contracts:   4,
		Accounts:    8,
		Difficulty:  2,
		Seed:        seed,
		KeySpace:    30,
		EnclaveCost: cost,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	plane, err := dep.StartCertPlane(issuers)
	if err != nil {
		t.Fatalf("StartCertPlane: %v", err)
	}
	dep.Net().SetFaults(plan)
	client := dep.NewSuperlightClient()
	follower := dep.FollowCerts(client, dcert.FollowerConfig{Name: "chaos-client", StallDeadline: 15 * time.Millisecond})
	rig := &chaosRig{dep: dep, plane: plane, client: client, follower: follower}
	cleanup := func() {
		follower.Stop()
		plane.Stop()
		dep.Net().Close()
	}
	return rig, cleanup
}

// converge asserts liveness and safety: the follower reaches the miner's
// tip, and the header it accepted (through full certificate validation) is
// byte-identical to the miner's best header.
func (r *chaosRig) converge(t *testing.T) {
	t.Helper()
	tip := r.dep.Miner().Tip()
	if err := r.follower.WaitForHeight(tip.Header.Height, 20*time.Second); err != nil {
		t.Fatalf("liveness: %v", err)
	}
	hdr, cert := r.client.Latest()
	if hdr.Hash() != tip.Hash() {
		t.Fatalf("safety: client tip %s != miner tip %s", hdr.Hash(), tip.Hash())
	}
	if cert == nil || cert.Digest != dcert.BlockDigest(hdr) {
		t.Fatalf("safety: accepted certificate does not cover the adopted header")
	}
}

// TestChaosDropsAndDuplicates runs two CIs under heavy loss and duplication
// on every certification topic. Lost bundles are recovered through the
// follower's stall-triggered catch-up requests.
func TestChaosDropsAndDuplicates(t *testing.T) {
	rig, cleanup := newChaosRig(t, 101, 2, &dcert.FaultPlan{
		Seed: 101,
		Rules: []dcert.FaultRule{
			{Topic: dcert.TopicCerts, Drop: 0.4, Duplicate: 0.4},
			{Topic: dcert.TopicCertRequests, Drop: 0.3, Duplicate: 0.3},
			{Topic: dcert.TopicBlocks, Drop: 0.2},
		},
	})
	defer cleanup()

	for i := 0; i < 10; i++ {
		if _, err := rig.plane.MineAndBroadcast(5); err != nil {
			t.Fatalf("MineAndBroadcast(%d): %v", i, err)
		}
	}
	rig.converge(t)
}

// TestChaosReorderAndJitter delays and reorders certificate delivery so
// bundles arrive out of order and stale; the client's chain-selection rule
// must keep only the highest certified height and still converge.
func TestChaosReorderAndJitter(t *testing.T) {
	rig, cleanup := newChaosRig(t, 202, 2, &dcert.FaultPlan{
		Seed: 202,
		Rules: []dcert.FaultRule{
			{Topic: dcert.TopicCerts, Reorder: 0.6, ReorderDelay: 10 * time.Millisecond, Duplicate: 0.5, JitterMax: 5 * time.Millisecond},
			{Topic: dcert.TopicCertRequests, JitterMax: 3 * time.Millisecond},
		},
	})
	defer cleanup()

	for i := 0; i < 10; i++ {
		if _, err := rig.plane.MineAndBroadcast(5); err != nil {
			t.Fatalf("MineAndBroadcast(%d): %v", i, err)
		}
	}
	rig.converge(t)
	if st := rig.follower.Stats(); st.Accepted == 0 {
		t.Fatalf("follower accepted nothing: %+v", st)
	}
}

// TestChaosPartitionHealAndFailover is the full outage drill: the cert
// topic partitions while the primary CI crashes, the secondary carries the
// plane after the heal, then the primary recovers from its checkpoint and
// carries the plane alone after the secondary crashes. The client fails
// over between issuers transparently (one extra attestation check per new
// enclave) and still converges on the miner's tip.
func TestChaosPartitionHealAndFailover(t *testing.T) {
	rig, cleanup := newChaosRig(t, 303, 2, &dcert.FaultPlan{
		Seed: 303,
		Rules: []dcert.FaultRule{
			{Topic: dcert.TopicCerts, Drop: 0.15, Duplicate: 0.2},
		},
	})
	defer cleanup()
	net := rig.dep.Net()

	// Phase 1: healthy start.
	for i := 0; i < 3; i++ {
		if _, err := rig.plane.MineAndBroadcast(5); err != nil {
			t.Fatalf("phase 1: %v", err)
		}
	}

	// Phase 2: the cert topic partitions AND the primary CI crashes.
	// Blocks mined now reach no client; the secondary keeps certifying
	// into the void.
	net.Partition(dcert.TopicCerts)
	if err := rig.plane.Kill("ci0"); err != nil {
		t.Fatalf("Kill(ci0): %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rig.plane.MineAndBroadcast(5); err != nil {
			t.Fatalf("phase 2: %v", err)
		}
	}
	if live := rig.plane.Live(); len(live) != 1 || live[0] != "ci1" {
		t.Fatalf("live issuers during outage = %v", live)
	}

	// Phase 3: the partition heals. The client's stall-triggered catch-up
	// request is answered by the surviving secondary — failover without the
	// primary.
	net.Heal(dcert.TopicCerts)
	if err := rig.follower.WaitForHeight(rig.dep.Miner().Tip().Header.Height, 20*time.Second); err != nil {
		t.Fatalf("failover to ci1 after heal: %v", err)
	}

	// Phase 4: the primary restarts from its persisted checkpoint and
	// re-certifies only the blocks it missed; then the secondary crashes and
	// the restarted primary carries the plane alone.
	if err := rig.plane.Restart("ci0"); err != nil {
		t.Fatalf("Restart(ci0): %v", err)
	}
	if err := rig.plane.Kill("ci1"); err != nil {
		t.Fatalf("Kill(ci1): %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rig.plane.MineAndBroadcast(5); err != nil {
			t.Fatalf("phase 4: %v", err)
		}
	}
	ci0, err := rig.plane.Issuer("ci0")
	if err != nil {
		t.Fatalf("Issuer(ci0): %v", err)
	}
	// The restarted enclave certified only the post-checkpoint blocks: the
	// 3 missed during the outage plus the 3 mined after restart — never the
	// whole chain from genesis.
	if ecalls := ci0.Enclave().Stats().Ecalls; ecalls != 6 {
		t.Fatalf("restarted CI performed %d Ecalls, want 6 (3 catch-up + 3 new)", ecalls)
	}
	rig.converge(t)
}

// TestChaosPipelinedCrashRecovery kills a CI while its certification
// pipeline has blocks in flight: submitted, speculatively executed, but not
// yet certified. The crash must discard all speculation (the checkpoint
// describes only certified work), the surviving CI carries the plane, and
// the restarted CI re-certifies exactly the blocks past its checkpoint —
// no gap in its certificate chain and no block signed twice.
func TestChaosPipelinedCrashRecovery(t *testing.T) {
	// A sluggish enclave (2ms per transition) keeps several blocks in the
	// speculative stages when the kill lands.
	rig, cleanup := newChaosRigCost(t, 404, 2, &dcert.FaultPlan{
		Seed: 404,
		Rules: []dcert.FaultRule{
			{Topic: dcert.TopicCerts, Drop: 0.2, Duplicate: 0.2},
		},
	}, dcert.EnclaveCostModel{TransitionLatency: 2 * time.Millisecond, ComputeFactor: 1.25})
	defer cleanup()

	if err := rig.plane.StartPipelines(dcert.PipelineConfig{Workers: 2}); err != nil {
		t.Fatalf("StartPipelines: %v", err)
	}

	// Phase 1: stream blocks through the pipelines, then kill ci0 while its
	// pipeline is still draining them.
	for i := 0; i < 4; i++ {
		if _, err := rig.plane.MineAndBroadcastPipelined(5); err != nil {
			t.Fatalf("phase 1: %v", err)
		}
	}
	if err := rig.plane.Kill("ci0"); err != nil {
		t.Fatalf("Kill(ci0): %v", err)
	}
	ckptHeight, err := rig.plane.CheckpointHeight("ci0")
	if err != nil {
		t.Fatalf("CheckpointHeight: %v", err)
	}

	// Phase 2: the surviving CI carries the plane alone.
	for i := 0; i < 3; i++ {
		if _, err := rig.plane.MineAndBroadcastPipelined(5); err != nil {
			t.Fatalf("phase 2: %v", err)
		}
	}

	// Phase 3: restart. Catch-up re-certifies every block after the
	// checkpoint — whatever was speculative at the kill is re-executed and
	// re-signed by the fresh enclave, not recovered from the dead one.
	minerBestAtRestart := rig.dep.Miner().Tip().Header.Height
	if err := rig.plane.Restart("ci0"); err != nil {
		t.Fatalf("Restart(ci0): %v", err)
	}
	const minedAfterRestart = 2
	for i := 0; i < minedAfterRestart; i++ {
		if _, err := rig.plane.MineAndBroadcastPipelined(5); err != nil {
			t.Fatalf("phase 3: %v", err)
		}
	}
	if err := rig.plane.DrainPipelines(); err != nil {
		t.Fatalf("DrainPipelines: %v", err)
	}

	ci0, err := rig.plane.Issuer("ci0")
	if err != nil {
		t.Fatalf("Issuer(ci0): %v", err)
	}
	// No double-signing, no gaps: one Ecall per block from the checkpoint to
	// the final tip, and nothing before the checkpoint.
	wantEcalls := (minerBestAtRestart - ckptHeight) + minedAfterRestart
	if ecalls := ci0.Enclave().Stats().Ecalls; uint64(ecalls) != wantEcalls {
		t.Fatalf("restarted CI performed %d Ecalls, want %d (certified %d..%d)",
			ecalls, wantEcalls, ckptHeight+1, minerBestAtRestart+minedAfterRestart)
	}
	minerStore := rig.dep.Miner().Store()
	for h := uint64(1); h <= minerStore.BestHeight(); h++ {
		blk, err := minerStore.AtHeight(h)
		if err != nil {
			t.Fatalf("AtHeight(%d): %v", h, err)
		}
		_, ok := ci0.CertFor(blk.Hash())
		if h < ckptHeight && ok {
			t.Fatalf("restarted CI holds a certificate for pre-checkpoint height %d", h)
		}
		if h >= ckptHeight && !ok {
			t.Fatalf("certificate chain gap at height %d (checkpoint %d)", h, ckptHeight)
		}
	}
	if ci0.Node().Tip().Hash() != rig.dep.Miner().Tip().Hash() {
		t.Fatal("restarted CI replica diverged from the miner")
	}
	rig.converge(t)
}

// TestChaosFaultCounterReconciliation arms the instrumentation plane before
// a lossy run and asserts the fault fabric's registry counters reconcile
// exactly with the injection ledger the fault layer keeps for itself: every
// injected drop/duplicate/reorder is counted, none are invented, and
// delivered = published - dropped - partitioned + duplicated on every topic.
func TestChaosFaultCounterReconciliation(t *testing.T) {
	rig, cleanup := newChaosRig(t, 707, 2, &dcert.FaultPlan{
		Seed: 707,
		Rules: []dcert.FaultRule{
			{Topic: dcert.TopicCerts, Drop: 0.35, Duplicate: 0.35},
			{Topic: dcert.TopicCertRequests, Drop: 0.3, Duplicate: 0.2},
			{Topic: dcert.TopicBlocks, Drop: 0.2, Reorder: 0.4, ReorderDelay: 5 * time.Millisecond},
		},
	})
	defer cleanup()
	// Attach the registry before the first publish so both ledgers observe
	// the same event stream from the start.
	reg, _ := rig.dep.EnableObservability(nil)

	for i := 0; i < 12; i++ {
		if _, err := rig.plane.MineAndBroadcast(5); err != nil {
			t.Fatalf("MineAndBroadcast(%d): %v", i, err)
		}
	}
	rig.converge(t)

	counter := func(name, topic string) uint64 {
		return reg.Counter(name, "", dcert.MetricLabel("topic", topic)).Value()
	}
	sawFaults := false
	for _, topic := range []string{dcert.TopicCerts, dcert.TopicCertRequests, dcert.TopicBlocks} {
		tally := rig.dep.FaultTally(topic)
		if tally.Published == 0 && topic != dcert.TopicCertRequests {
			// Cert requests only flow when the follower stalls into catch-up,
			// so that topic may legitimately stay quiet; blocks and certs
			// must not.
			t.Fatalf("topic %s: fault plan observed no publishes", topic)
		}
		got := dcert.NetFaultTally{
			Published:   counter("dcert_net_published_total", topic),
			Dropped:     counter("dcert_net_dropped_total", topic),
			Partitioned: counter("dcert_net_partitioned_total", topic),
			Duplicated:  counter("dcert_net_duplicated_total", topic),
			Reordered:   counter("dcert_net_reordered_total", topic),
		}
		if got != tally {
			t.Fatalf("topic %s: registry counters %+v != injection ledger %+v", topic, got, tally)
		}
		delivered := counter("dcert_net_delivered_total", topic)
		want := tally.Published - tally.Dropped - tally.Partitioned + tally.Duplicated
		if delivered != want {
			t.Fatalf("topic %s: delivered %d, want published-dropped-partitioned+duplicated = %d (%+v)",
				topic, delivered, want, tally)
		}
		if tally.Dropped > 0 || tally.Duplicated > 0 || tally.Reordered > 0 {
			sawFaults = true
		}
	}
	if !sawFaults {
		t.Fatal("seeded plan injected no faults at all; reconciliation was vacuous")
	}
}
