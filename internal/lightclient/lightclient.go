// Package lightclient implements the traditional blockchain light client of
// §2.1 — the baseline DCert is compared against in Fig. 7. It synchronizes
// and validates every block header (hash linkage, height continuity, and the
// consensus proof) and stores all of them, so both its bootstrap time and
// its storage grow linearly with chain length.
package lightclient

import (
	"errors"
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
)

// Package errors.
var (
	// ErrBrokenChain is returned when synced headers do not link.
	ErrBrokenChain = errors.New("lightclient: header chain broken")
	// ErrGenesisMismatch is returned when the first header is not the
	// client's pinned genesis.
	ErrGenesisMismatch = errors.New("lightclient: genesis mismatch")
)

// Client is a traditional light client.
//
// Client is not safe for concurrent use.
type Client struct {
	genesis chash.Hash
	params  consensus.Params
	headers []*chain.Header
}

// New creates a light client pinned to a genesis header hash.
func New(genesis chash.Hash, params consensus.Params) *Client {
	return &Client{genesis: genesis, params: params}
}

// Sync validates and adopts a full header chain, replacing any previous
// state if the new chain is longer (longest-chain rule). This is the linear
// bootstrap the paper measures in Fig. 7b.
func (c *Client) Sync(headers []*chain.Header) error {
	if len(headers) == 0 {
		return fmt.Errorf("%w: empty header chain", ErrBrokenChain)
	}
	if headers[0].Hash() != c.genesis {
		return fmt.Errorf("%w: got %s", ErrGenesisMismatch, headers[0].Hash())
	}
	if headers[0].Height != 0 {
		return fmt.Errorf("%w: first header has height %d", ErrBrokenChain, headers[0].Height)
	}
	for i := 1; i < len(headers); i++ {
		h := headers[i]
		if h.Height != headers[i-1].Height+1 {
			return fmt.Errorf("%w: height %d at position %d", ErrBrokenChain, h.Height, i)
		}
		if h.PrevHash != headers[i-1].Hash() {
			return fmt.Errorf("%w: link broken at height %d", ErrBrokenChain, h.Height)
		}
		if err := consensus.Verify(c.params, h); err != nil {
			return fmt.Errorf("lightclient: header %d: %w", h.Height, err)
		}
	}
	if len(c.headers) >= len(headers) {
		return fmt.Errorf("lightclient: refusing shorter chain (%d ≤ %d headers)", len(headers), len(c.headers))
	}
	c.headers = headers
	return nil
}

// Append validates and adopts one new header extending the current tip.
func (c *Client) Append(h *chain.Header) error {
	if len(c.headers) == 0 {
		if h.Hash() != c.genesis {
			return fmt.Errorf("%w: got %s", ErrGenesisMismatch, h.Hash())
		}
		c.headers = append(c.headers, h)
		return nil
	}
	tip := c.headers[len(c.headers)-1]
	if h.Height != tip.Height+1 || h.PrevHash != tip.Hash() {
		return fmt.Errorf("%w: header %d does not extend tip %d", ErrBrokenChain, h.Height, tip.Height)
	}
	if err := consensus.Verify(c.params, h); err != nil {
		return err
	}
	c.headers = append(c.headers, h)
	return nil
}

// Height returns the tip height (0 before sync).
func (c *Client) Height() uint64 {
	if len(c.headers) == 0 {
		return 0
	}
	return c.headers[len(c.headers)-1].Height
}

// Len returns the number of stored headers.
func (c *Client) Len() int {
	return len(c.headers)
}

// Header returns the stored header at the given height.
func (c *Client) Header(height uint64) (*chain.Header, error) {
	if height >= uint64(len(c.headers)) {
		return nil, fmt.Errorf("lightclient: no header at height %d", height)
	}
	return c.headers[height], nil
}

// StorageSize is the client's persistent footprint in bytes: every header it
// has synchronized — the linear curve of Fig. 7a.
func (c *Client) StorageSize() int {
	size := 0
	for _, h := range c.headers {
		size += h.EncodedSize()
	}
	return size
}
