// Package attest simulates the Intel SGX remote-attestation infrastructure
// the DCert paper relies on (§2.2, §3.3): hardware quoting keys, quotes that
// bind an enclave measurement to user-supplied report data (here: the
// fingerprint of the enclave-generated public key pk_enc), and the Intel
// Attestation Service (IAS) that verifies quotes and issues signed
// attestation reports.
//
// The simulation keeps the verification chain byte-for-byte real: quotes are
// ECDSA-signed by a per-platform quoting key registered with the authority,
// and reports are ECDSA-signed by the authority's root key, which verifiers
// trust out of band (exactly how clients trust Intel's report-signing
// certificate). Only the hardware provenance of the quoting key is assumed
// rather than enforced — the assumption the paper makes of SGX itself.
package attest

import (
	"errors"
	"fmt"
	"sync"

	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrUnknownPlatform is returned for quotes from unregistered hardware.
	ErrUnknownPlatform = errors.New("attest: quote from unknown platform")
	// ErrBadQuote is returned when a quote's signature fails.
	ErrBadQuote = errors.New("attest: quote signature invalid")
	// ErrBadReport is returned when a report fails verification.
	ErrBadReport = errors.New("attest: report verification failed")
	// ErrMeasurementMismatch is returned when a report's measurement does
	// not match the verifier's expected enclave program.
	ErrMeasurementMismatch = errors.New("attest: enclave measurement mismatch")
	// ErrReportDataMismatch is returned when a report's user data does not
	// match (e.g. pk_enc binding, Alg. 3 line 5).
	ErrReportDataMismatch = errors.New("attest: report data mismatch")
)

// Quote is the hardware-signed statement an enclave produces: "an enclave
// with this measurement, on this platform, vouches for this report data".
type Quote struct {
	// Measurement identifies the enclave program.
	Measurement chash.Hash
	// ReportData is caller-chosen data bound into the quote (pk_enc digest).
	ReportData chash.Hash
	// PlatformID names the quoting key that signed.
	PlatformID string
	// Signature is the platform quoting key's signature.
	Signature []byte
}

// preimage is the signed content of a quote.
func (q *Quote) preimage() chash.Hash {
	e := chash.NewEncoder(128)
	e.PutHash(q.Measurement)
	e.PutHash(q.ReportData)
	e.PutString(q.PlatformID)
	return chash.Sum(chash.DomainQuote, e.Bytes())
}

// Platform models one SGX-capable machine: it holds the hardware quoting key
// used to sign quotes for enclaves running on it.
type Platform struct {
	id string
	sk *chash.PrivateKey
}

// ID returns the platform identifier.
func (p *Platform) ID() string {
	return p.id
}

// SignQuote produces a quote for an enclave on this platform.
func (p *Platform) SignQuote(measurement, reportData chash.Hash) (*Quote, error) {
	q := &Quote{Measurement: measurement, ReportData: reportData, PlatformID: p.id}
	sig, err := p.sk.Sign(q.preimage())
	if err != nil {
		return nil, fmt.Errorf("attest: sign quote: %w", err)
	}
	q.Signature = sig
	return q, nil
}

// Authority simulates the IAS: it knows the genuine platforms' quoting keys
// and issues signed attestation reports for valid quotes.
//
// Authority is safe for concurrent use.
type Authority struct {
	mu        sync.RWMutex
	sk        *chash.PrivateKey
	pk        *chash.PublicKey
	platforms map[string]*chash.PublicKey
	nextID    int
}

// NewAuthority creates an attestation authority with a fresh root key.
func NewAuthority() (*Authority, error) {
	sk, err := chash.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("attest: authority key: %w", err)
	}
	return buildAuthority(sk)
}

// NewAuthorityFromSeed creates an authority whose root key is derived
// deterministically from the seed, so two independently built test rigs share
// an identical trust anchor (and therefore byte-identical reports).
func NewAuthorityFromSeed(seed []byte) (*Authority, error) {
	sk, err := chash.GenerateKeyFromSeed(append([]byte("authority/"), seed...))
	if err != nil {
		return nil, fmt.Errorf("attest: authority key: %w", err)
	}
	return buildAuthority(sk)
}

func buildAuthority(sk *chash.PrivateKey) (*Authority, error) {
	pk, err := sk.Public()
	if err != nil {
		return nil, fmt.Errorf("attest: authority key: %w", err)
	}
	return &Authority{sk: sk, pk: pk, platforms: make(map[string]*chash.PublicKey)}, nil
}

// PublicKey returns the authority's report-signing key, which verifiers
// trust out of band.
func (a *Authority) PublicKey() *chash.PublicKey {
	return a.pk
}

// NewPlatform provisions a platform with a quoting key known to the
// authority (the EPID/DCAP provisioning step).
func (a *Authority) NewPlatform() (*Platform, error) {
	sk, err := chash.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("attest: platform key: %w", err)
	}
	return a.register(sk)
}

// NewPlatformFromSeed provisions a platform whose quoting key is derived
// deterministically from the seed (platform IDs stay sequential per
// authority, so equal provisioning order gives equal IDs).
func (a *Authority) NewPlatformFromSeed(seed []byte) (*Platform, error) {
	sk, err := chash.GenerateKeyFromSeed(append([]byte("platform/"), seed...))
	if err != nil {
		return nil, fmt.Errorf("attest: platform key: %w", err)
	}
	return a.register(sk)
}

func (a *Authority) register(sk *chash.PrivateKey) (*Platform, error) {
	pk, err := sk.Public()
	if err != nil {
		return nil, fmt.Errorf("attest: platform key: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	id := fmt.Sprintf("sgx-platform-%04d", a.nextID)
	a.platforms[id] = pk
	return &Platform{id: id, sk: sk}, nil
}

// Attest verifies a quote and issues a signed attestation report
// (the IAS round trip of §3.3).
func (a *Authority) Attest(q *Quote) (*Report, error) {
	a.mu.RLock()
	pk, ok := a.platforms[q.PlatformID]
	a.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlatform, q.PlatformID)
	}
	if err := pk.Verify(q.preimage(), q.Signature); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuote, err)
	}
	r := &Report{
		Measurement: q.Measurement,
		ReportData:  q.ReportData,
		PlatformID:  q.PlatformID,
		CertChain:   syntheticCertChain(),
	}
	sig, err := a.sk.Sign(r.preimage())
	if err != nil {
		return nil, fmt.Errorf("attest: sign report: %w", err)
	}
	r.Signature = sig
	return r, nil
}

// Report is the IAS attestation report (rep in the paper's certificates).
type Report struct {
	// Measurement identifies the attested enclave program.
	Measurement chash.Hash
	// ReportData is the user data bound into the attested quote.
	ReportData chash.Hash
	// PlatformID names the attested platform.
	PlatformID string
	// CertChain carries the report-signing certificate chain. The simulated
	// chain has a realistic IAS size (~2 KB) so that client storage-cost
	// measurements reflect real report sizes.
	CertChain []byte
	// Signature is the authority's signature over the report body.
	Signature []byte
}

// preimage is the signed content of a report.
func (r *Report) preimage() chash.Hash {
	e := chash.NewEncoder(256 + len(r.CertChain))
	e.PutHash(r.Measurement)
	e.PutHash(r.ReportData)
	e.PutString(r.PlatformID)
	e.PutBytes(r.CertChain)
	return chash.Sum(chash.DomainReport, e.Bytes())
}

// Verify checks the report chain a superlight client runs (Alg. 3 lines
// 3-5): the authority's signature, the expected enclave measurement, and the
// report-data binding.
func (r *Report) Verify(authorityPK *chash.PublicKey, expectMeasurement, expectReportData chash.Hash) error {
	if err := authorityPK.Verify(r.preimage(), r.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if r.Measurement != expectMeasurement {
		return fmt.Errorf("%w: report %s, expected %s", ErrMeasurementMismatch, r.Measurement, expectMeasurement)
	}
	if r.ReportData != expectReportData {
		return fmt.Errorf("%w: report %s, expected %s", ErrReportDataMismatch, r.ReportData, expectReportData)
	}
	return nil
}

// Marshal serializes the report.
func (r *Report) Marshal() []byte {
	e := chash.NewEncoder(512 + len(r.CertChain))
	e.PutHash(r.Measurement)
	e.PutHash(r.ReportData)
	e.PutString(r.PlatformID)
	e.PutBytes(r.CertChain)
	e.PutBytes(r.Signature)
	return e.Bytes()
}

// UnmarshalReport parses a report produced by Marshal.
func UnmarshalReport(raw []byte) (*Report, error) {
	d := chash.NewDecoder(raw)
	var r Report
	var err error
	if r.Measurement, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("attest: unmarshal report: %w", err)
	}
	if r.ReportData, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("attest: unmarshal report: %w", err)
	}
	if r.PlatformID, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("attest: unmarshal report: %w", err)
	}
	if r.CertChain, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("attest: unmarshal report: %w", err)
	}
	if r.Signature, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("attest: unmarshal report: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("attest: unmarshal report: %w", err)
	}
	return &r, nil
}

// EncodedSize returns the serialized report size.
func (r *Report) EncodedSize() int {
	return len(r.Marshal())
}

// syntheticCertChainSize approximates the PEM certificate chain attached to
// real IAS reports.
const syntheticCertChainSize = 2560

// syntheticCertChain builds a deterministic placeholder certificate chain of
// realistic size.
func syntheticCertChain() []byte {
	chain := make([]byte, syntheticCertChainSize)
	seed := chash.Sum(chash.DomainReport, []byte("synthetic-ias-cert-chain"))
	for i := 0; i < len(chain); i += chash.Size {
		copy(chain[i:], seed[:])
		seed = chash.Sum(chash.DomainReport, seed[:])
	}
	return chain
}
