package core

import (
	"testing"

	"dcert/internal/enclave"
	"dcert/internal/workload"
)

func FuzzUnmarshalCertificate(f *testing.F) {
	// Seed with a genuine certificate.
	e := newEnv(f, workload.DoNothing, enclave.CostModel{})
	blk := e.mine(f, 2)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		f.Fatalf("ProcessBlock: %v", err)
	}
	f.Add(cert.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})

	authorityPK := e.authority.PublicKey()
	measurement := e.issuer.Measurement()
	digest := BlockDigest(&blk.Header)

	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnmarshalCertificate(raw)
		if err != nil {
			return
		}
		// Decodable bytes must re-encode canonically.
		if string(parsed.Marshal()) != string(raw) {
			t.Fatal("non-canonical certificate decode")
		}
		// Verification must never panic; it may only succeed for the
		// genuine certificate bytes.
		if err := parsed.Verify(authorityPK, measurement, digest); err == nil {
			if string(raw) != string(cert.Marshal()) {
				t.Fatal("a mutated certificate verified")
			}
		}
	})
}
