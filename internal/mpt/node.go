// Package mpt implements a Merkle Patricia Trie in the style used by
// Ethereum's state and by the upper level of DCert's two-level query index
// (Fig. 5). Nodes are content-addressed by the hash of their canonical
// encoding, which makes witnesses (partial tries) self-verifying: a node can
// only resolve from a witness if its bytes hash to the reference stored in
// its parent.
//
// The package supports full in-memory tries (Get/Put/Delete/Hash), witness
// extraction for a set of keys, and stateless partial tries rebuilt from a
// root digest plus a witness — the mechanism the DCert enclave uses to
// validate read sets and recompute state roots without holding the state.
package mpt

import (
	"errors"
	"fmt"

	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrMissingNode is returned by partial tries when an operation needs a
	// node that the witness does not contain.
	ErrMissingNode = errors.New("mpt: node not in witness")
	// ErrBadNode is returned when a node encoding is malformed.
	ErrBadNode = errors.New("mpt: malformed node encoding")
	// ErrEmptyValue is returned when storing an empty value (use Delete).
	ErrEmptyValue = errors.New("mpt: empty value not allowed")
)

// node is the interface implemented by all trie node kinds.
type node interface {
	// cachedHash returns the node hash and whether it is valid (not dirty).
	cachedHash() (chash.Hash, bool)
}

type (
	// hashNode is an unresolved reference to a node stored elsewhere.
	hashNode chash.Hash

	// leafNode terminates a key with a value.
	leafNode struct {
		path  []byte // remaining key nibbles
		value []byte
		hash  chash.Hash
		dirty bool
	}

	// extNode compresses a shared nibble run above a single child.
	extNode struct {
		path  []byte // shared nibbles, len >= 1
		child node
		hash  chash.Hash
		dirty bool
	}

	// branchNode fans out on the next nibble; value holds a key that ends
	// exactly at this node.
	branchNode struct {
		children [16]node
		value    []byte
		hash     chash.Hash
		dirty    bool
	}
)

func (n hashNode) cachedHash() (chash.Hash, bool)    { return chash.Hash(n), true }
func (n *leafNode) cachedHash() (chash.Hash, bool)   { return n.hash, !n.dirty }
func (n *extNode) cachedHash() (chash.Hash, bool)    { return n.hash, !n.dirty }
func (n *branchNode) cachedHash() (chash.Hash, bool) { return n.hash, !n.dirty }

// Node encoding tags.
const (
	tagLeaf   byte = 1
	tagExt    byte = 2
	tagBranch byte = 3
)

// keyToNibbles expands a key into one nibble per element (high first).
func keyToNibbles(key []byte) []byte {
	out := make([]byte, 0, 2*len(key))
	for _, b := range key {
		out = append(out, b>>4, b&0x0f)
	}
	return out
}

// packNibbles serializes a nibble slice: count byte(s) then packed pairs.
func packNibbles(e *chash.Encoder, nibbles []byte) {
	e.PutUint32(uint32(len(nibbles)))
	var cur byte
	for i, n := range nibbles {
		if i%2 == 0 {
			cur = n << 4
		} else {
			e.PutByte(cur | n)
		}
	}
	if len(nibbles)%2 == 1 {
		e.PutByte(cur)
	}
}

func unpackNibbles(d *chash.Decoder) ([]byte, error) {
	count, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if count > 4096 {
		return nil, fmt.Errorf("%w: nibble run of %d", ErrBadNode, count)
	}
	nBytes := int(count+1) / 2
	out := make([]byte, 0, count)
	for i := 0; i < nBytes; i++ {
		b, err := d.Byte()
		if err != nil {
			return nil, err
		}
		out = append(out, b>>4)
		if len(out) < int(count) {
			out = append(out, b&0x0f)
		}
	}
	if len(out) != int(count) {
		return nil, fmt.Errorf("%w: nibble count mismatch", ErrBadNode)
	}
	return out, nil
}

// encodeNode serializes a node. All child references must have valid cached
// hashes (callers hash bottom-up before encoding).
func encodeNode(n node) ([]byte, error) {
	e := chash.NewEncoder(64)
	switch v := n.(type) {
	case *leafNode:
		e.PutByte(tagLeaf)
		packNibbles(e, v.path)
		e.PutBytes(v.value)
	case *extNode:
		h, ok := v.child.cachedHash()
		if !ok {
			return nil, fmt.Errorf("mpt: encode ext with dirty child")
		}
		e.PutByte(tagExt)
		packNibbles(e, v.path)
		e.PutHash(h)
	case *branchNode:
		e.PutByte(tagBranch)
		var bitmap uint32
		for i, c := range v.children {
			if c != nil {
				bitmap |= 1 << uint(i)
			}
		}
		e.PutUint32(bitmap)
		for _, c := range v.children {
			if c == nil {
				continue
			}
			h, ok := c.cachedHash()
			if !ok {
				return nil, fmt.Errorf("mpt: encode branch with dirty child")
			}
			e.PutHash(h)
		}
		e.PutBytes(v.value)
	default:
		return nil, fmt.Errorf("mpt: encode unsupported node %T", n)
	}
	return e.Bytes(), nil
}

// decodeNode parses a node encoding. Children come back as hashNode
// references; the node is marked clean with the supplied hash.
func decodeNode(h chash.Hash, raw []byte) (node, error) {
	d := chash.NewDecoder(raw)
	tag, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
	}
	switch tag {
	case tagLeaf:
		path, err := unpackNibbles(d)
		if err != nil {
			return nil, fmt.Errorf("%w: leaf path: %v", ErrBadNode, err)
		}
		value, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: leaf value: %v", ErrBadNode, err)
		}
		if len(value) == 0 {
			return nil, fmt.Errorf("%w: leaf with empty value", ErrBadNode)
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		return &leafNode{path: path, value: value, hash: h}, nil
	case tagExt:
		path, err := unpackNibbles(d)
		if err != nil {
			return nil, fmt.Errorf("%w: ext path: %v", ErrBadNode, err)
		}
		if len(path) == 0 {
			return nil, fmt.Errorf("%w: ext with empty path", ErrBadNode)
		}
		child, err := d.ReadHash()
		if err != nil {
			return nil, fmt.Errorf("%w: ext child: %v", ErrBadNode, err)
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		return &extNode{path: path, child: hashNode(child), hash: h}, nil
	case tagBranch:
		bitmap, err := d.Uint32()
		if err != nil {
			return nil, fmt.Errorf("%w: branch bitmap: %v", ErrBadNode, err)
		}
		if bitmap > 0xffff {
			return nil, fmt.Errorf("%w: branch bitmap overflow", ErrBadNode)
		}
		b := &branchNode{hash: h}
		for i := 0; i < 16; i++ {
			if bitmap&(1<<uint(i)) == 0 {
				continue
			}
			ch, err := d.ReadHash()
			if err != nil {
				return nil, fmt.Errorf("%w: branch child: %v", ErrBadNode, err)
			}
			b.children[i] = hashNode(ch)
		}
		value, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: branch value: %v", ErrBadNode, err)
		}
		if len(value) > 0 {
			b.value = value
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadNode, tag)
	}
}

// commonPrefixLen returns the length of the shared prefix of a and b.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
