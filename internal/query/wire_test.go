package query

import (
	"bytes"
	"errors"
	"testing"

	"dcert/internal/workload"
)

// queryableRig builds a rig with a populated historical + keyword index.
func queryableRig(t *testing.T) (*rig, *TwoLevel, *TwoLevel) {
	t.Helper()
	r := newRig(t, workload.SmallBank)
	hist, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	kw, err := NewKeywordIndex("kw")
	if err != nil {
		t.Fatalf("NewKeywordIndex: %v", err)
	}
	if err := r.sp.AddIndex(hist); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	if err := r.sp.AddIndex(kw); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 8, 15)
	return r, hist, kw
}

func TestHistoricalResultWireRoundTrip(t *testing.T) {
	r, hist, _ := queryableRig(t)
	root, err := hist.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, hist)
	res, err := r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}

	raw := res.Marshal()
	parsed, err := UnmarshalHistoricalResult(raw)
	if err != nil {
		t.Fatalf("UnmarshalHistoricalResult: %v", err)
	}
	if parsed.Key != res.Key || parsed.Lo != res.Lo || parsed.Hi != res.Hi {
		t.Fatal("window fields did not round-trip")
	}
	if len(parsed.Entries) != len(res.Entries) {
		t.Fatalf("entries %d != %d", len(parsed.Entries), len(res.Entries))
	}
	for i := range parsed.Entries {
		if parsed.Entries[i].Version != res.Entries[i].Version ||
			!bytes.Equal(parsed.Entries[i].Value, res.Entries[i].Value) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	// The deserialized result must still verify.
	if err := VerifyHistorical(root, parsed); err != nil {
		t.Fatalf("VerifyHistorical after round trip: %v", err)
	}
}

func TestHistoricalResultWireTamperDetected(t *testing.T) {
	r, hist, _ := queryableRig(t)
	root, err := hist.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, hist)
	res, err := r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if len(res.Entries) == 0 {
		t.Skip("no entries")
	}
	raw := res.Marshal()
	// Corrupt one byte somewhere in the middle (entry values / proof bytes);
	// either decoding or verification must fail.
	raw[len(raw)/2] ^= 0x01
	parsed, err := UnmarshalHistoricalResult(raw)
	if err != nil {
		return // rejected at decode: fine
	}
	if err := VerifyHistorical(root, parsed); err == nil {
		t.Fatal("tampered wire bytes slipped through verification")
	}
}

func TestKeywordResultWireRoundTrip(t *testing.T) {
	r, _, kw := queryableRig(t)
	root, err := kw.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := r.sp.KeywordQuery("kw", []string{"deposit_check", workload.ContractName(workload.SmallBank, 0)})
	if err != nil {
		t.Fatalf("KeywordQuery: %v", err)
	}
	parsed, err := UnmarshalKeywordResult(res.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalKeywordResult: %v", err)
	}
	if len(parsed.Keywords) != 2 || len(parsed.Matches) != len(res.Matches) {
		t.Fatal("keyword result did not round-trip")
	}
	if err := VerifyKeyword(root, parsed); err != nil {
		t.Fatalf("VerifyKeyword after round trip: %v", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalHistoricalResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for garbage historical result")
	}
	if _, err := UnmarshalKeywordResult([]byte{0xff}); err == nil {
		t.Fatal("want error for garbage keyword result")
	}
	if _, err := UnmarshalRangeProof(nil); err == nil {
		t.Fatal("want error for empty range proof")
	}
}

func TestRangeProofMarshalMatchesEncodedSize(t *testing.T) {
	r, hist, _ := queryableRig(t)
	key := anyIndexedKey(t, hist)
	res, err := r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	raw := res.Proof.Marshal()
	// EncodedSize is the sum of the component witness sizes; Marshal adds a
	// small fixed framing overhead.
	if len(raw) < res.Proof.EncodedSize() {
		t.Fatalf("Marshal (%d) smaller than EncodedSize (%d)", len(raw), res.Proof.EncodedSize())
	}
	if len(raw) > res.Proof.EncodedSize()+32 {
		t.Fatalf("framing overhead too large: %d vs %d", len(raw), res.Proof.EncodedSize())
	}
}

func TestAggregateQueries(t *testing.T) {
	r, hist, _ := queryableRig(t)
	root, err := hist.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	// SmallBank balances are uint64-encoded, so all operators apply.
	var key string
	for k, lower := range hist.lowers {
		if lower.Len() >= 2 {
			key = k
			break
		}
	}
	if key == "" {
		t.Skip("no key with multiple versions")
	}
	for _, op := range []AggregateOp{AggCount, AggSum, AggMin, AggMax} {
		res, err := r.sp.AggregateQuery("hist", op, key, 0, 100)
		if err != nil {
			t.Fatalf("AggregateQuery(%s): %v", op, err)
		}
		if err := VerifyAggregate(root, res); err != nil {
			t.Fatalf("VerifyAggregate(%s): %v", op, err)
		}
		if op == AggCount && res.Value < 2 {
			t.Fatalf("COUNT = %d, want ≥2", res.Value)
		}
	}
}

func TestVerifyAggregateRejectsForgedValue(t *testing.T) {
	r, hist, _ := queryableRig(t)
	root, err := hist.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, hist)
	res, err := r.sp.AggregateQuery("hist", AggSum, key, 0, 100)
	if err != nil {
		t.Fatalf("AggregateQuery: %v", err)
	}
	res.Value += 1_000_000 // SP inflates the sum
	if err := VerifyAggregate(root, res); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("want ErrResultMismatch, got %v", err)
	}
}

func TestVerifyAggregateRejectsWindowMismatch(t *testing.T) {
	r, hist, _ := queryableRig(t)
	root, err := hist.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, hist)
	res, err := r.sp.AggregateQuery("hist", AggCount, key, 0, 100)
	if err != nil {
		t.Fatalf("AggregateQuery: %v", err)
	}
	res.Hi = 9999 // claim a wider window than the proof covers
	if err := VerifyAggregate(root, res); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestAggregateOpString(t *testing.T) {
	want := map[AggregateOp]string{AggCount: "COUNT", AggSum: "SUM", AggMin: "MIN", AggMax: "MAX"}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d.String() = %q", int(op), op.String())
		}
	}
}
