// Package skiplist implements an authenticated deterministic skip list over
// versioned values, modelled after the provenance index of LineageChain
// (Ruan et al., PVLDB'19). It serves as the baseline that DCert's two-level
// MPT + Merkle B-tree index is compared against in Fig. 11 of the paper.
//
// Every (node, level) cell carries a label — the hash of its canonical
// encoding, which chains rightward (next cell's label) and downward (the
// cell below). The commitment is the head tower's top label. Proofs reuse
// the content-addressed witness approach of the other index packages: a
// proof is the set of cell encodings visited by the query traversal, and
// verification replays the traversal from the committed root label.
//
// Node heights are derived deterministically from the version hash, so the
// structure (and therefore the root) is history-independent.
package skiplist

import (
	"errors"
	"fmt"
	"math/bits"

	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrMissingCell is returned when a proof lacks a cell needed by the
	// verification traversal.
	ErrMissingCell = errors.New("skiplist: cell not in proof")
	// ErrBadCell is returned for malformed cell encodings.
	ErrBadCell = errors.New("skiplist: malformed cell encoding")
	// ErrBadRange is returned when lo > hi.
	ErrBadRange = errors.New("skiplist: invalid range")
)

// maxHeight caps tower heights (64 trailing-zero bits are never observed).
const maxHeight = 24

// Entry is a versioned value.
type Entry struct {
	// Version is the entry key.
	Version uint64
	// Value is the stored payload.
	Value []byte
}

type snode struct {
	version uint64
	value   []byte
	next    []*snode     // next[l] is the right neighbour at level l
	labels  []chash.Hash // labels[l] is the cell label at level l
}

func (n *snode) height() int {
	return len(n.next)
}

// heightOf derives the deterministic tower height of a version.
func heightOf(version uint64) int {
	h := chash.Sum(chash.DomainIndex, []byte("skiplist-height"), chash.Uint64Bytes(version))
	tz := bits.TrailingZeros64(uint64(h[0]) | uint64(h[1])<<8 | uint64(h[2])<<16 |
		uint64(h[3])<<24 | uint64(h[4])<<32 | uint64(h[5])<<40 |
		uint64(h[6])<<48 | uint64(h[7])<<56)
	// Halve the expected growth (height increments per 1 zero bit) like a
	// p=1/2 skip list.
	height := 1 + tz
	if height > maxHeight {
		height = maxHeight
	}
	return height
}

// List is a mutable authenticated skip list.
//
// List is not safe for concurrent use.
type List struct {
	head  *snode
	size  int
	dirty bool
}

// New returns an empty list.
func New() *List {
	return &List{
		head: &snode{next: make([]*snode, 1), labels: make([]chash.Hash, 1)},
	}
}

// Len returns the entry count.
func (l *List) Len() int {
	return l.size
}

// Insert stores value at version, overwriting any existing entry.
func (l *List) Insert(version uint64, value []byte) {
	val := make([]byte, len(value))
	copy(val, value)
	l.dirty = true

	// Find the update path.
	update := make([]*snode, l.head.height())
	cur := l.head
	for lvl := l.head.height() - 1; lvl >= 0; lvl-- {
		for cur.next[lvl] != nil && cur.next[lvl].version < version {
			cur = cur.next[lvl]
		}
		update[lvl] = cur
	}
	if target := cur.next[0]; target != nil && target.version == version {
		target.value = val
		return
	}

	h := heightOf(version)
	for l.head.height() < h {
		l.head.next = append(l.head.next, nil)
		l.head.labels = append(l.head.labels, chash.Zero)
		update = append(update, l.head)
	}
	n := &snode{version: version, value: val, next: make([]*snode, h), labels: make([]chash.Hash, h)}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = update[lvl].next[lvl]
		update[lvl].next[lvl] = n
	}
	l.size++
}

// Get returns the value at the exact version, or nil if absent.
func (l *List) Get(version uint64) []byte {
	cur := l.head
	for lvl := l.head.height() - 1; lvl >= 0; lvl-- {
		for cur.next[lvl] != nil && cur.next[lvl].version < version {
			cur = cur.next[lvl]
		}
	}
	if n := cur.next[0]; n != nil && n.version == version {
		return n.Value()
	}
	return nil
}

// Value returns a copy of the node's value.
func (n *snode) Value() []byte {
	out := make([]byte, len(n.value))
	copy(out, n.value)
	return out
}

// Range returns all entries with versions in [lo, hi], in order.
func (l *List) Range(lo, hi uint64) ([]Entry, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrBadRange, lo, hi)
	}
	var out []Entry
	cur := l.head
	for lvl := l.head.height() - 1; lvl >= 0; lvl-- {
		for cur.next[lvl] != nil && cur.next[lvl].version < lo {
			cur = cur.next[lvl]
		}
	}
	for n := cur.next[0]; n != nil && n.Version() <= hi; n = n.next[0] {
		out = append(out, Entry{Version: n.version, Value: n.Value()})
	}
	return out, nil
}

// Version returns the node's version.
func (n *snode) Version() uint64 {
	return n.version
}

// Cell encoding tags.
const (
	tagHead byte = 1
	tagBase byte = 2 // level-0 cell of a value node
	tagUp   byte = 3 // level>0 cell of a value node
)

// encodeCell builds the canonical encoding of cell (n, lvl). Labels of the
// referenced cells (right and down) must be current.
func encodeCell(n *snode, lvl int, isHead bool) []byte {
	e := chash.NewEncoder(64)
	switch {
	case isHead:
		e.PutByte(tagHead)
		e.PutUint32(uint32(lvl))
		if lvl > 0 {
			e.PutHash(n.labels[lvl-1])
		}
	case lvl == 0:
		e.PutByte(tagBase)
		e.PutUint64(n.version)
		e.PutBytes(n.value)
	default:
		e.PutByte(tagUp)
		e.PutUint64(n.version)
		e.PutHash(n.labels[lvl-1])
	}
	next := n.next[lvl]
	if next == nil {
		e.PutHash(chash.Zero)
	} else {
		e.PutHash(next.labels[lvl])
	}
	return e.Bytes()
}

// recompute refreshes all labels right-to-left, bottom-up.
func (l *List) recompute() {
	// Collect nodes in order.
	var nodes []*snode
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		nodes = append(nodes, n)
	}
	maxH := l.head.height()
	for lvl := 0; lvl < maxH; lvl++ {
		// Right-to-left so next labels are current.
		for i := len(nodes) - 1; i >= 0; i-- {
			n := nodes[i]
			if lvl >= n.height() {
				continue
			}
			n.labels[lvl] = chash.Sum(chash.DomainIndex, encodeCell(n, lvl, false))
		}
		l.head.labels[lvl] = chash.Sum(chash.DomainIndex, encodeCell(l.head, lvl, true))
	}
	l.dirty = false
}

// Root returns the commitment: the head tower's top label.
func (l *List) Root() chash.Hash {
	if l.dirty || l.size == 0 && l.head.labels[0].IsZero() {
		l.recompute()
	}
	return l.head.labels[l.head.height()-1]
}

// Proof is a set of content-addressed cell encodings covering a query
// traversal.
type Proof struct {
	cells map[chash.Hash][]byte
}

// NewProof returns an empty proof.
func NewProof() *Proof {
	return &Proof{cells: make(map[chash.Hash][]byte)}
}

func (p *Proof) add(raw []byte) {
	h := chash.Sum(chash.DomainIndex, raw)
	if _, ok := p.cells[h]; ok {
		return
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	p.cells[h] = cp
}

func (p *Proof) cell(h chash.Hash) ([]byte, error) {
	raw, ok := p.cells[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrMissingCell, h)
	}
	if chash.Sum(chash.DomainIndex, raw) != h {
		return nil, fmt.Errorf("%w: bytes do not hash to label", ErrBadCell)
	}
	return raw, nil
}

// Len returns the number of distinct cells.
func (p *Proof) Len() int {
	return len(p.cells)
}

// EncodedSize returns the serialized proof size in bytes (the Fig. 11
// proof-size metric).
func (p *Proof) EncodedSize() int {
	size := 4
	for _, raw := range p.cells {
		size += 4 + len(raw)
	}
	return size
}

// ProveRange builds the integrity/completeness proof for Range(lo, hi).
func (l *List) ProveRange(lo, hi uint64) (*Proof, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrBadRange, lo, hi)
	}
	l.Root() // ensure labels are current
	p := NewProof()

	cur := l.head
	curHead := true
	for lvl := l.head.height() - 1; lvl >= 0; lvl-- {
		p.add(encodeCell(cur, lvl, curHead))
		for cur.next[lvl] != nil && cur.next[lvl].version < lo {
			cur = cur.next[lvl]
			curHead = false
			p.add(encodeCell(cur, lvl, false))
		}
		// The cell one past (if any) bounds the move; the verifier resolves
		// it to learn its version, so include it.
		if nxt := cur.next[lvl]; nxt != nil {
			p.add(encodeCell(nxt, lvl, false))
		}
	}
	for n := cur.next[0]; n != nil && n.version <= hi; n = n.next[0] {
		p.add(encodeCell(n, 0, false))
		if nxt := n.next[0]; nxt != nil {
			p.add(encodeCell(nxt, 0, false))
		}
	}
	return p, nil
}

// decodedCell is a parsed cell.
type decodedCell struct {
	tag     byte
	level   uint32
	version uint64
	value   []byte
	down    chash.Hash
	next    chash.Hash
}

func decodeCell(raw []byte) (*decodedCell, error) {
	d := chash.NewDecoder(raw)
	tag, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	c := &decodedCell{tag: tag}
	switch tag {
	case tagHead:
		if c.level, err = d.Uint32(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
		}
		if c.level > 0 {
			if c.down, err = d.ReadHash(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
			}
		}
	case tagBase:
		if c.version, err = d.Uint64(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
		}
		if c.value, err = d.ReadBytes(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
		}
	case tagUp:
		if c.version, err = d.Uint64(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
		}
		if c.down, err = d.ReadHash(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
		}
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadCell, tag)
	}
	if c.next, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	return c, nil
}

// VerifyRange replays the range traversal against the committed root label
// and returns the complete, authenticated result set.
func VerifyRange(root chash.Hash, lo, hi uint64, proof *Proof) ([]Entry, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrBadRange, lo, hi)
	}
	if root.IsZero() {
		return nil, fmt.Errorf("%w: zero root", ErrBadCell)
	}
	resolve := func(h chash.Hash) (*decodedCell, error) {
		raw, err := proof.cell(h)
		if err != nil {
			return nil, err
		}
		return decodeCell(raw)
	}

	cur, err := resolve(root)
	if err != nil {
		return nil, err
	}
	if cur.tag != tagHead {
		return nil, fmt.Errorf("%w: root is not a head cell", ErrBadCell)
	}
	// Descend: at each level move right while next.version < lo, then down.
	for {
		// Move right as far as possible at this level.
		for !cur.next.IsZero() {
			nxt, err := resolve(cur.next)
			if err != nil {
				return nil, err
			}
			if nxt.tag == tagHead {
				return nil, fmt.Errorf("%w: head cell in chain", ErrBadCell)
			}
			if nxt.version >= lo {
				break
			}
			cur = nxt
		}
		if cur.tag == tagBase || cur.tag == tagHead && cur.level == 0 {
			break
		}
		down, err := resolve(cur.down)
		if err != nil {
			return nil, err
		}
		cur = down
	}
	// Level-0 walk collecting the results.
	var out []Entry
	next := cur.next
	for !next.IsZero() {
		c, err := resolve(next)
		if err != nil {
			return nil, err
		}
		if c.tag != tagBase {
			return nil, fmt.Errorf("%w: non-base cell on level 0", ErrBadCell)
		}
		if c.version > hi {
			break
		}
		if c.version >= lo {
			out = append(out, Entry{Version: c.version, Value: c.value})
		}
		next = c.next
	}
	return out, nil
}
