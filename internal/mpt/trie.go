package mpt

import (
	"bytes"
	"fmt"

	"dcert/internal/chash"
)

// Resolver loads node encodings by hash. Full tries need none; partial tries
// resolve from a Witness.
type Resolver interface {
	// Node returns the canonical encoding of the node with the given hash,
	// or ErrMissingNode if unavailable.
	Node(h chash.Hash) ([]byte, error)
}

// Trie is a Merkle Patricia Trie. A Trie with a nil resolver holds all nodes
// in memory; a Trie built by NewPartial resolves nodes lazily from a witness.
//
// Trie is not safe for concurrent use.
type Trie struct {
	root     node
	resolver Resolver
}

// New returns an empty in-memory trie.
func New() *Trie {
	return &Trie{}
}

// NewPartial returns a stateless trie rooted at root whose nodes resolve from
// the given resolver (typically a Witness). A zero root is the empty trie.
func NewPartial(root chash.Hash, r Resolver) *Trie {
	t := &Trie{resolver: r}
	if !root.IsZero() {
		t.root = hashNode(root)
	}
	return t
}

// resolve turns a hashNode reference into a concrete node.
func (t *Trie) resolve(n node) (node, error) {
	h, ok := n.(hashNode)
	if !ok {
		return n, nil
	}
	if t.resolver == nil {
		return nil, fmt.Errorf("%w: no resolver for %s", ErrMissingNode, chash.Hash(h))
	}
	raw, err := t.resolver.Node(chash.Hash(h))
	if err != nil {
		return nil, err
	}
	if chash.Sum(chash.DomainNode, raw) != chash.Hash(h) {
		return nil, fmt.Errorf("%w: witness bytes do not hash to reference", ErrBadNode)
	}
	return decodeNode(chash.Hash(h), raw)
}

// Get returns the value stored at key, or nil if absent. A nil error with a
// nil value is a proven absence (in partial tries, reaching it required only
// witnessed nodes).
//
// On a fully in-memory trie Get never mutates the structure (write-backs
// happen only when a hashNode reference was resolved from a witness), so any
// number of Gets may run concurrently against an unchanging in-memory trie —
// the serving plane's snapshot reads rely on this.
func (t *Trie) Get(key []byte) ([]byte, error) {
	val, newRoot, err := t.get(t.root, keyToNibbles(key))
	if err != nil {
		return nil, err
	}
	if newRoot != t.root {
		t.root = newRoot
	}
	return val, nil
}

// get returns the value and the (possibly resolved) subtree root. Resolved
// children are written back into their parents only when resolution actually
// replaced a hashNode, keeping lookups on in-memory tries mutation-free.
func (t *Trie) get(n node, path []byte) ([]byte, node, error) {
	if n == nil {
		return nil, nil, nil
	}
	resolved, err := t.resolve(n)
	if err != nil {
		return nil, n, err
	}
	n = resolved
	switch v := n.(type) {
	case *leafNode:
		if bytes.Equal(v.path, path) {
			return v.value, n, nil
		}
		return nil, n, nil
	case *extNode:
		if len(path) < len(v.path) || !bytes.Equal(v.path, path[:len(v.path)]) {
			return nil, n, nil
		}
		val, child, err := t.get(v.child, path[len(v.path):])
		if child != v.child {
			v.child = child
		}
		return val, n, err
	case *branchNode:
		if len(path) == 0 {
			return v.value, n, nil
		}
		val, child, err := t.get(v.children[path[0]], path[1:])
		if child != v.children[path[0]] {
			v.children[path[0]] = child
		}
		return val, n, err
	default:
		return nil, n, fmt.Errorf("mpt: get on unexpected node %T", n)
	}
}

// Put stores value at key, replacing any existing value. Empty values are
// rejected; use Delete to remove a key.
func (t *Trie) Put(key, value []byte) error {
	if len(value) == 0 {
		return ErrEmptyValue
	}
	val := make([]byte, len(value))
	copy(val, value)
	newRoot, err := t.put(t.root, keyToNibbles(key), val)
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

func (t *Trie) put(n node, path []byte, value []byte) (node, error) {
	if n == nil {
		return &leafNode{path: path, value: value, dirty: true}, nil
	}
	resolved, err := t.resolve(n)
	if err != nil {
		return n, err
	}
	n = resolved
	switch v := n.(type) {
	case *leafNode:
		cp := commonPrefixLen(v.path, path)
		if cp == len(v.path) && cp == len(path) {
			v.value = value
			v.dirty = true
			return v, nil
		}
		// Split into a branch under a shared-prefix extension.
		branch := &branchNode{dirty: true}
		if err := placeInBranch(branch, v.path[cp:], &leafNode{value: v.value, dirty: true}); err != nil {
			return n, err
		}
		if err := placeInBranch(branch, path[cp:], &leafNode{value: value, dirty: true}); err != nil {
			return n, err
		}
		return wrapExt(path[:cp], branch), nil
	case *extNode:
		cp := commonPrefixLen(v.path, path)
		if cp == len(v.path) {
			child, err := t.put(v.child, path[cp:], value)
			if err != nil {
				return n, err
			}
			v.child = child
			v.dirty = true
			return v, nil
		}
		// Diverge inside the extension run.
		branch := &branchNode{dirty: true}
		// Remainder of the extension becomes a child of the branch.
		rest := v.path[cp:]
		sub := v.child
		if len(rest) > 1 {
			sub = &extNode{path: rest[1:], child: v.child, dirty: true}
		}
		branch.children[rest[0]] = sub
		if err := placeInBranch(branch, path[cp:], &leafNode{value: value, dirty: true}); err != nil {
			return n, err
		}
		return wrapExt(path[:cp], branch), nil
	case *branchNode:
		if len(path) == 0 {
			v.value = value
			v.dirty = true
			return v, nil
		}
		child, err := t.put(v.children[path[0]], path[1:], value)
		if err != nil {
			return n, err
		}
		v.children[path[0]] = child
		v.dirty = true
		return v, nil
	default:
		return n, fmt.Errorf("mpt: put on unexpected node %T", n)
	}
}

// placeInBranch stores a leaf (with its value in lf.value) under the branch
// at the given relative path; an empty path lands in the branch's value slot.
func placeInBranch(b *branchNode, path []byte, lf *leafNode) error {
	if len(path) == 0 {
		if b.value != nil {
			return fmt.Errorf("mpt: duplicate terminal value at branch")
		}
		b.value = lf.value
		return nil
	}
	lf.path = path[1:]
	b.children[path[0]] = lf
	return nil
}

// wrapExt wraps n in an extension node when prefix is non-empty.
func wrapExt(prefix []byte, n node) node {
	if len(prefix) == 0 {
		return n
	}
	p := make([]byte, len(prefix))
	copy(p, prefix)
	return &extNode{path: p, child: n, dirty: true}
}

// Delete removes key from the trie. Deleting an absent key is a no-op.
// On partial tries Delete may need sibling nodes beyond the key's own path;
// if the witness lacks them, ErrMissingNode is returned.
func (t *Trie) Delete(key []byte) error {
	newRoot, err := t.del(t.root, keyToNibbles(key))
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

func (t *Trie) del(n node, path []byte) (node, error) {
	if n == nil {
		return nil, nil
	}
	resolved, err := t.resolve(n)
	if err != nil {
		return n, err
	}
	n = resolved
	switch v := n.(type) {
	case *leafNode:
		if bytes.Equal(v.path, path) {
			return nil, nil
		}
		return n, nil
	case *extNode:
		if len(path) < len(v.path) || !bytes.Equal(v.path, path[:len(v.path)]) {
			return n, nil
		}
		child, err := t.del(v.child, path[len(v.path):])
		if err != nil {
			return n, err
		}
		if child == nil {
			return nil, nil
		}
		v.child = child
		v.dirty = true
		return t.collapseExt(v)
	case *branchNode:
		if len(path) == 0 {
			if v.value == nil {
				return n, nil
			}
			v.value = nil
			v.dirty = true
			return t.collapseBranch(v)
		}
		child, err := t.del(v.children[path[0]], path[1:])
		if err != nil {
			return n, err
		}
		v.children[path[0]] = child
		v.dirty = true
		return t.collapseBranch(v)
	default:
		return n, fmt.Errorf("mpt: delete on unexpected node %T", n)
	}
}

// collapseExt merges an extension with a short child so the trie stays in
// canonical form after deletions.
func (t *Trie) collapseExt(v *extNode) (node, error) {
	child, err := t.resolve(v.child)
	if err != nil {
		return nil, err
	}
	switch c := child.(type) {
	case *leafNode:
		return &leafNode{path: joinPaths(v.path, c.path), value: c.value, dirty: true}, nil
	case *extNode:
		return &extNode{path: joinPaths(v.path, c.path), child: c.child, dirty: true}, nil
	default:
		v.child = child
		return v, nil
	}
}

// collapseBranch restores canonical form when a branch drops to one referent.
func (t *Trie) collapseBranch(v *branchNode) (node, error) {
	live := -1
	count := 0
	for i, c := range v.children {
		if c != nil {
			live = i
			count++
		}
	}
	switch {
	case count == 0 && v.value == nil:
		return nil, nil
	case count == 0:
		return &leafNode{path: nil, value: v.value, dirty: true}, nil
	case count == 1 && v.value == nil:
		child, err := t.resolve(v.children[live])
		if err != nil {
			return nil, err
		}
		prefix := []byte{byte(live)}
		switch c := child.(type) {
		case *leafNode:
			return &leafNode{path: joinPaths(prefix, c.path), value: c.value, dirty: true}, nil
		case *extNode:
			return &extNode{path: joinPaths(prefix, c.path), child: c.child, dirty: true}, nil
		case *branchNode:
			return &extNode{path: prefix, child: c, dirty: true}, nil
		default:
			return nil, fmt.Errorf("mpt: collapse unexpected child %T", child)
		}
	default:
		return v, nil
	}
}

func joinPaths(a, b []byte) []byte {
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Hash returns the root digest, recomputing dirty subtrees. The empty trie
// hashes to chash.Zero.
//
// Large dirty regions are rehashed in parallel: the walk fans out at branch
// nodes near the root onto a process-wide bounded worker pool (see
// parallel.go). Node digests are position-independent, so the fan-out is
// deterministic — the root is byte-identical to a sequential rehash.
func (t *Trie) Hash() (chash.Hash, error) {
	if t.root == nil {
		return chash.Zero, nil
	}
	// Fan out only when there are cores to fan onto and enough dirty work
	// to amortize the goroutines; otherwise sequential is strictly faster.
	if cap(hashSem) >= 2 && dirtyAtLeast(t.root, parallelDirtyMin) {
		return t.hashPar(t.root, 0)
	}
	return t.hashRec(t.root)
}

// HashSequential is the single-threaded reference implementation of Hash.
// Benchmarks use it as the parallel commit's baseline, and the equivalence
// test asserts both produce identical roots.
func (t *Trie) HashSequential() (chash.Hash, error) {
	if t.root == nil {
		return chash.Zero, nil
	}
	return t.hashRec(t.root)
}

func (t *Trie) hashRec(n node) (chash.Hash, error) {
	if h, ok := n.cachedHash(); ok {
		return h, nil
	}
	switch v := n.(type) {
	case *leafNode:
		raw, err := encodeNode(v)
		if err != nil {
			return chash.Zero, err
		}
		v.hash = chash.Sum(chash.DomainNode, raw)
		v.dirty = false
		return v.hash, nil
	case *extNode:
		if _, err := t.hashRec(v.child); err != nil {
			return chash.Zero, err
		}
		raw, err := encodeNode(v)
		if err != nil {
			return chash.Zero, err
		}
		v.hash = chash.Sum(chash.DomainNode, raw)
		v.dirty = false
		return v.hash, nil
	case *branchNode:
		for _, c := range v.children {
			if c == nil {
				continue
			}
			if _, err := t.hashRec(c); err != nil {
				return chash.Zero, err
			}
		}
		raw, err := encodeNode(v)
		if err != nil {
			return chash.Zero, err
		}
		v.hash = chash.Sum(chash.DomainNode, raw)
		v.dirty = false
		return v.hash, nil
	default:
		return chash.Zero, fmt.Errorf("mpt: hash unexpected node %T", n)
	}
}

// MustHash is Hash for tries known to be well-formed; it is used internally
// after operations that already validated the structure.
func (t *Trie) MustHash() chash.Hash {
	h, err := t.Hash()
	if err != nil {
		// Only reachable via memory corruption or a package bug: every
		// mutation path keeps the trie hashable.
		panic(fmt.Sprintf("mpt: MustHash: %v", err))
	}
	return h
}
