package bench

import (
	"fmt"
	"time"

	"dcert/internal/consensus"
	"dcert/internal/node"
	"dcert/internal/query"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// Fig11Point is one (index design, window) sample.
type Fig11Point struct {
	// Design is "dcert" (MPT + MB-tree) or "lineagechain" (skip list).
	Design string
	// WindowBlocks is the queried time-window size in blocks.
	WindowBlocks int
	// Latency is the average end-to-end query time in seconds (SP query +
	// client verification).
	Latency float64
	// ProofSize is the average integrity-proof size in bytes.
	ProofSize int
	// Results is the average result-set size.
	Results float64
}

// Fig11Result holds the verifiable-query comparison.
type Fig11Result struct {
	Points []Fig11Point
}

// fig11Setup builds the paper's query workload: QueryTuples key-value tuples
// updated continuously for QueryChainBlocks blocks, indexed by both the
// DCert two-level index and the LineageChain skip-list baseline.
type fig11Setup struct {
	sp       *query.ServiceProvider
	twoLevel *query.TwoLevel
	baseline *query.SkipListIndex
	keys     []string
	tip      uint64
}

func buildFig11(p Params) (*fig11Setup, error) {
	params := consensus.Params{Difficulty: 0} // query benches don't need PoW
	const contracts = 1                       // one KV contract keeps key paths aligned
	mk := func() (*node.FullNode, error) {
		reg := vm.NewRegistry()
		if err := workload.Register(reg, workload.KVStore, contracts); err != nil {
			return nil, err
		}
		genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params})
		if err != nil {
			return nil, err
		}
		return node.NewFullNode(genesis, db, reg, params)
	}
	minerNode, err := mk()
	if err != nil {
		return nil, err
	}
	spNode, err := mk()
	if err != nil {
		return nil, err
	}
	miner := node.NewMiner(minerNode)
	sp := query.NewServiceProvider(spNode)

	twoLevel, err := query.NewHistoricalIndex("dcert-hist", "ct/")
	if err != nil {
		return nil, err
	}
	if err := sp.AddIndex(twoLevel); err != nil {
		return nil, err
	}
	baseline := query.NewSkipListIndex("lineage-hist", "ct/")

	accounts, err := workload.NewAccounts(8)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.Config{
		Kind:      workload.KVStore,
		Contracts: contracts,
		Seed:      42,
		KeySpace:  p.QueryTuples,
	}, accounts)
	if err != nil {
		return nil, err
	}

	// Paper setup: create the tuples, then issue update transactions until
	// the ledger holds QueryChainBlocks blocks.
	txPerBlock := 20
	for i := 0; i < p.QueryChainBlocks; i++ {
		txs, err := gen.Block(txPerBlock)
		if err != nil {
			return nil, err
		}
		blk, err := miner.Propose(txs)
		if err != nil {
			return nil, err
		}
		writes, err := sp.Node().ValidateBlock(blk)
		if err != nil {
			return nil, err
		}
		if err := sp.ProcessBlock(blk); err != nil {
			return nil, err
		}
		if err := baseline.Apply(blk, writes); err != nil {
			return nil, err
		}
	}

	// Query keys: the KV user keys, as stored under the contract prefix.
	keys := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		keys = append(keys, fmt.Sprintf("ct/%s/kv/user-key-%d", workload.ContractName(workload.KVStore, 0), i*7%p.QueryTuples))
	}
	return &fig11Setup{
		sp:       sp,
		twoLevel: twoLevel,
		baseline: baseline,
		keys:     keys,
		tip:      sp.Node().Tip().Header.Height,
	}, nil
}

// RunFig11 measures Fig. 11: historical account queries with increasing time
// windows ending at the latest block, comparing DCert's two-level
// MPT + Merkle B-tree index against the LineageChain-style authenticated
// skip list — both for query latency (a) and proof size (b).
func RunFig11(scale Scale) (*Fig11Result, error) {
	p := ParamsFor(scale)
	setup, err := buildFig11(p)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}

	twoRoot, err := setup.twoLevel.Root()
	if err != nil {
		return nil, err
	}
	baseRoot, err := setup.baseline.Root()
	if err != nil {
		return nil, err
	}

	for _, w := range p.WindowBlocks {
		lo := uint64(0)
		if uint64(w) < setup.tip {
			lo = setup.tip - uint64(w)
		}
		hi := setup.tip

		// DCert two-level index.
		var dcertSec float64
		var dcertProof, dcertResults int
		for q := 0; q < p.QueryRepeat; q++ {
			key := setup.keys[q%len(setup.keys)]
			start := time.Now()
			hres, err := setup.sp.HistoricalQuery("dcert-hist", key, lo, hi)
			if err != nil {
				return nil, err
			}
			if err := query.VerifyHistorical(twoRoot, hres); err != nil {
				return nil, fmt.Errorf("bench: fig11 verify: %w", err)
			}
			dcertSec += time.Since(start).Seconds()
			dcertProof += hres.Proof.EncodedSize()
			dcertResults += len(hres.Entries)
		}

		// LineageChain baseline.
		var baseSec float64
		var baseProof, baseResults int
		for q := 0; q < p.QueryRepeat; q++ {
			key := setup.keys[q%len(setup.keys)]
			start := time.Now()
			entries, proof, err := setup.baseline.QueryRange(key, lo, hi)
			if err != nil {
				return nil, err
			}
			if err := query.VerifySkipRange(baseRoot, key, lo, hi, entries, proof); err != nil {
				return nil, fmt.Errorf("bench: fig11 baseline verify: %w", err)
			}
			baseSec += time.Since(start).Seconds()
			baseProof += proof.EncodedSize()
			baseResults += len(entries)
		}

		n := float64(p.QueryRepeat)
		res.Points = append(res.Points,
			Fig11Point{
				Design: "dcert", WindowBlocks: w,
				Latency: dcertSec / n, ProofSize: dcertProof / p.QueryRepeat,
				Results: float64(dcertResults) / n,
			},
			Fig11Point{
				Design: "lineagechain", WindowBlocks: w,
				Latency: baseSec / n, ProofSize: baseProof / p.QueryRepeat,
				Results: float64(baseResults) / n,
			},
		)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title: "Fig. 11 — verifiable historical queries: DCert two-level index vs LineageChain skip list",
		Note:  "windows end at the latest block; latency includes SP query + client verification",
		Columns: []string{
			"design", "window (blocks)", "latency (ms)", "proof size (KB)", "avg results",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Design, fmt.Sprintf("%d", pt.WindowBlocks),
			ms(pt.Latency), kb(pt.ProofSize), fmt.Sprintf("%.1f", pt.Results),
		})
	}
	return t
}
