package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every instrument and the registry itself must no-op (not
// panic) when nil, because uninstrumented components carry nil fields.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("hist", "h", nil)
	var tr *Tracer
	var lg *Logger

	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h.Observe(1)
	h.ObserveDuration(0)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %v", q)
	}
	sp := tr.Start("x", 0)
	sp.End()
	if tr.Recent(10) != nil || tr.Total() != 0 {
		t.Fatal("nil tracer recorded")
	}
	lg.Info("msg", F("k", "v"))
	lg.With(F("a", 1)).Error("msg")
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
}

// TestRegistryIdentity: same (name, labels) returns the same instrument, so
// restarted components keep accumulating into one series; label order must
// not matter.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("ci", "ci0"), L("kind", "block"))
	b := r.Counter("x_total", "help", L("kind", "block"), L("ci", "ci0"))
	if a != b {
		t.Fatal("label order changed identity")
	}
	c := r.Counter("x_total", "help", L("ci", "ci1"), L("kind", "block"))
	if a == c {
		t.Fatal("distinct labels shared an instrument")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", a.Value())
	}
}

// TestPrometheusGolden pins the full /metrics text format: HELP/TYPE
// headers, label rendering, histogram cumulative buckets with le edges, sum
// and count lines, family registration order.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	blocks := r.Counter("dcert_blocks_total", "Blocks certified.", L("ci", "ci0"))
	blocks.Add(12)
	r.Counter("dcert_blocks_total", "Blocks certified.", L("ci", "ci1")).Add(7)
	depth := r.Gauge("dcert_queue_depth", "Verify queue depth.")
	depth.Set(3)
	h := r.Histogram("dcert_stage_seconds", "Stage latency.", []float64{0.001, 0.01, 0.1}, L("stage", "verify"))
	h.Observe(0.0005)
	h.Observe(0.001) // exactly on a bucket edge: le="0.001" is inclusive
	h.Observe(0.05)
	h.Observe(5) // beyond every bound: +Inf bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP dcert_blocks_total Blocks certified.
# TYPE dcert_blocks_total counter
dcert_blocks_total{ci="ci0"} 12
dcert_blocks_total{ci="ci1"} 7
# HELP dcert_queue_depth Verify queue depth.
# TYPE dcert_queue_depth gauge
dcert_queue_depth 3
# HELP dcert_stage_seconds Stage latency.
# TYPE dcert_stage_seconds histogram
dcert_stage_seconds_bucket{le="0.001",stage="verify"} 2
dcert_stage_seconds_bucket{le="0.01",stage="verify"} 2
dcert_stage_seconds_bucket{le="0.1",stage="verify"} 3
dcert_stage_seconds_bucket{le="+Inf",stage="verify"} 4
dcert_stage_seconds_sum{stage="verify"} 5.0515
dcert_stage_seconds_count{stage="verify"} 4
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCounterConcurrency hammers one counter and one histogram from many
// goroutines; totals must be exact (atomics, not torn read-modify-write).
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
	if want := 1.5 * workers * per; s.Sum < want-0.01 || s.Sum > want+0.01 {
		t.Fatalf("histogram sum = %v, want %v", s.Sum, want)
	}
}
