package mbtree

import (
	"fmt"
	"testing"
)

func populated(b *testing.B, n int) *Tree {
	b.Helper()
	tr := NewDefault()
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatalf("Insert: %v", err)
		}
	}
	if _, err := tr.Root(); err != nil {
		b.Fatalf("Root: %v", err)
	}
	return tr
}

func BenchmarkInsert(b *testing.B) {
	tr := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(uint64(10000+i), []byte("v")); err != nil {
			b.Fatalf("Insert: %v", err)
		}
	}
}

func BenchmarkRangeScan(b *testing.B) {
	tr := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Range(4000, 4200); err != nil {
			b.Fatalf("Range: %v", err)
		}
	}
}

func BenchmarkWitnessForRange(b *testing.B) {
	tr := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.WitnessForRange(4000, 4200); err != nil {
			b.Fatalf("WitnessForRange: %v", err)
		}
	}
}

func BenchmarkVerifyRange(b *testing.B) {
	tr := populated(b, 10000)
	root, err := tr.Root()
	if err != nil {
		b.Fatalf("Root: %v", err)
	}
	w, err := tr.WitnessForRange(4000, 4200)
	if err != nil {
		b.Fatalf("WitnessForRange: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyRange(DefaultOrder, root, 4000, 4200, w); err != nil {
			b.Fatalf("VerifyRange: %v", err)
		}
	}
}
