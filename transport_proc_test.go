package dcert_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Cross-process integration: the wire transport's reason to exist. These
// tests build the real dcert-node and dcert-query binaries, run them as
// separate OS processes connected only by a loopback TCP socket, and assert
// that certified queries verify end to end — including across a SIGKILL and
// a durable restart of the node.

// buildWireBinaries compiles both commands into a scratch dir once per test.
func buildWireBinaries(t *testing.T) (nodeBin, queryBin string) {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/dcert-node", "./cmd/dcert-query")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir + "/dcert-node", dir + "/dcert-query"
}

// syncBuffer is a mutex-guarded log sink: exec.Cmd writes stderr into it
// from its own copier goroutine while the test reads it on failure.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// wireNode is one running dcert-node -listen process.
type wireNode struct {
	cmd   *exec.Cmd
	addr  string
	mined chan struct{}
	logs  syncBuffer
}

// startWireNode launches the node and waits for its readiness line,
// returning once the wire address is known.
func startWireNode(t *testing.T, bin, dataDir string, blocks int) *wireNode {
	t.Helper()
	n := &wireNode{cmd: exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-blocks", strconv.Itoa(blocks),
		"-txs", "10",
		"-data-dir", dataDir,
	)}
	stdout, err := n.cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	n.cmd.Stderr = &n.logs
	if err := n.cmd.Start(); err != nil {
		t.Fatalf("start node: %v", err)
	}
	t.Cleanup(func() {
		n.cmd.Process.Kill()
		n.cmd.Wait()
	})

	addrCh := make(chan string, 1)
	n.mined = make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(&n.logs, line)
			if rest, ok := strings.CutPrefix(line, "wire: serving on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
			if strings.HasPrefix(line, "wire: mining done") {
				close(n.mined)
			}
		}
	}()
	select {
	case n.addr = <-addrCh:
	case <-time.After(60 * time.Second):
		t.Fatalf("node never became ready; logs:\n%s", n.logs.String())
	}
	return n
}

// waitMined blocks until the node reports its mining run complete, so
// queries see the full chain rather than racing the miner.
func (n *wireNode) waitMined(t *testing.T) {
	t.Helper()
	select {
	case <-n.mined:
	case <-time.After(60 * time.Second):
		t.Fatalf("node never finished mining; logs:\n%s", n.logs.String())
	}
}

// kill SIGKILLs the node — no graceful shutdown, as a crash would.
func (n *wireNode) kill(t *testing.T) {
	t.Helper()
	if err := n.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill node: %v", err)
	}
	n.cmd.Wait()
}

var tipHeightRE = regexp.MustCompile(`certified tip height (\d+) VERIFIED`)

// runWireQuery runs dcert-query -connect and returns the verified tip
// height it reported.
func runWireQuery(t *testing.T, bin, addr string) uint64 {
	t.Helper()
	out, err := exec.Command(bin, "-connect", addr).CombinedOutput()
	if err != nil {
		t.Fatalf("dcert-query -connect %s: %v\n%s", addr, err, out)
	}
	if !strings.Contains(string(out), "(RPC path)") || !strings.Contains(string(out), "(topic path)") {
		t.Fatalf("query output missing a verification path:\n%s", out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		if strings.Contains(line, "FAILED") {
			t.Fatalf("remote verification failed: %s", line)
		}
	}
	m := tipHeightRE.FindStringSubmatch(string(out))
	if m == nil {
		t.Fatalf("query output carries no verified tip height:\n%s", out)
	}
	h, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatalf("parse height %q: %v", m[1], err)
	}
	return h
}

// TestCrossProcessCertifiedQueries runs node and client as separate OS
// processes over loopback TCP: the client fetches trust anchors, validates
// the certificate chain, and verifies state queries — then the node is
// SIGKILLed and restarted from its data directory, and a fresh client
// verifies again at a strictly higher certified height.
func TestCrossProcessCertifiedQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses; skipped in -short")
	}
	nodeBin, queryBin := buildWireBinaries(t)
	dataDir := t.TempDir() + "/chain"

	node := startWireNode(t, nodeBin, dataDir, 3)
	node.waitMined(t)
	h1 := runWireQuery(t, queryBin, node.addr)
	if h1 != 3 {
		t.Fatalf("first run: verified height %d, want 3", h1)
	}

	// Crash the node mid-flight and restart it from the same directory: the
	// storage engine recovers the chain, a fresh enclave resumes the
	// certificate recursion, and remote clients verify the longer chain.
	// Recovery trims to the certified-on-disk prefix, so a SIGKILL that
	// outraces the final group-commit fsync may legally shed the very last
	// block — hence mining enough new blocks to clear the old tip with
	// margin, and asserting strictly-higher rather than an exact height.
	node.kill(t)
	node2 := startWireNode(t, nodeBin, dataDir, 3)
	node2.waitMined(t)
	h2 := runWireQuery(t, queryBin, node2.addr)
	if h2 <= h1 {
		t.Fatalf("after restart: verified height %d, want > %d; node logs:\n%s", h2, h1, node2.logs.String())
	}
}
