package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dcert/internal/attest"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/core"
	"dcert/internal/enclave"
	"dcert/internal/node"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// archiveEnv wires a miner + issuer whose chain we archive and restore.
type archiveEnv struct {
	authority *attest.Authority
	miner     *node.Miner
	issuer    *core.Issuer
	mkNode    func() *node.FullNode
	gen       *workload.Generator
}

func newArchiveEnv(t *testing.T) *archiveEnv {
	t.Helper()
	params := consensus.Params{Difficulty: 2}
	cfg := workload.Config{Kind: workload.KVStore, Contracts: 3, Seed: 7, KeySpace: 40}

	mkNode := func() *node.FullNode {
		t.Helper()
		reg := vm.NewRegistry()
		if err := workload.Register(reg, cfg.Kind, cfg.Contracts); err != nil {
			t.Fatalf("Register: %v", err)
		}
		genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params})
		if err != nil {
			t.Fatalf("BuildGenesis: %v", err)
		}
		n, err := node.NewFullNode(genesis, db, reg, params)
		if err != nil {
			t.Fatalf("NewFullNode: %v", err)
		}
		return n
	}

	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	issuer, err := core.NewIssuer(mkNode(), authority, platform, enclave.CostModel{})
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	accounts, err := workload.NewAccounts(6)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	gen, err := workload.NewGenerator(cfg, accounts)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return &archiveEnv{
		authority: authority,
		miner:     node.NewMiner(mkNode()),
		issuer:    issuer,
		mkNode:    mkNode,
		gen:       gen,
	}
}

func (e *archiveEnv) buildChain(t *testing.T, blocks int) {
	t.Helper()
	for i := 0; i < blocks; i++ {
		txs, err := e.gen.Block(8)
		if err != nil {
			t.Fatalf("gen.Block: %v", err)
		}
		blk, err := e.miner.Propose(txs)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	e := newArchiveEnv(t)
	e.buildChain(t, 6)
	path := filepath.Join(t.TempDir(), "chain.archive")

	if err := WriteChain(path, e.issuer.Node(), e.issuer.CertFor); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(c.Blocks) != 7 { // genesis + 6
		t.Fatalf("loaded %d blocks", len(c.Blocks))
	}
	if len(c.Certs) != 6 {
		t.Fatalf("loaded %d certs", len(c.Certs))
	}

	// Restore into a fresh full node: full re-validation.
	fresh := e.mkNode()
	applied, err := Replay(fresh, c)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if applied != 6 {
		t.Fatalf("applied %d blocks", applied)
	}
	if fresh.Tip().Hash() != e.issuer.Node().Tip().Hash() {
		t.Fatal("restored tip differs from original")
	}
	fr, err := fresh.State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	or, err := e.issuer.Node().State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if fr != or {
		t.Fatal("restored state differs from original")
	}
	// The archived certificates still verify against the restored chain.
	tip := fresh.Tip()
	cert, ok := c.Certs[tip.Hash()]
	if !ok {
		t.Fatal("tip certificate missing from archive")
	}
	if err := cert.Verify(e.authority.PublicKey(), e.issuer.Measurement(), core.BlockDigest(&tip.Header)); err != nil {
		t.Fatalf("archived certificate must verify: %v", err)
	}
}

func TestReplayRejectsTamperedBlocks(t *testing.T) {
	e := newArchiveEnv(t)
	e.buildChain(t, 4)
	path := filepath.Join(t.TempDir(), "chain.archive")
	if err := WriteChain(path, e.issuer.Node(), nil); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Tamper with a mid-chain block's state root: full-node replay rejects.
	c.Blocks[2].Header.StateRoot = chash.Leaf([]byte("forged"))
	fresh := e.mkNode()
	if _, err := Replay(fresh, c); err == nil {
		t.Fatal("tampered archive must not replay")
	}
}

func TestReplayRejectsWrongGenesis(t *testing.T) {
	e := newArchiveEnv(t)
	e.buildChain(t, 2)
	path := filepath.Join(t.TempDir(), "chain.archive")
	if err := WriteChain(path, e.issuer.Node(), nil); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	c.Blocks[0].Header.Time = 999 // different genesis
	fresh := e.mkNode()
	if _, err := Replay(fresh, c); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestLoadRejectsTruncatedArchive(t *testing.T) {
	e := newArchiveEnv(t)
	e.buildChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.archive")
	if err := WriteChain(path, e.issuer.Node(), e.issuer.CertFor); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte{9, 0, 0, 0, 2, 1, 2}, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestLoadEmptyArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	a, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(c.Blocks) != 0 || len(c.Certs) != 0 {
		t.Fatal("empty archive must load empty")
	}
}

// TestArchivedCertificateStillValidates loads an archive and has a fresh
// superlight client validate the tip certificate — a client bootstrapping
// from cold storage rather than the network.
func TestArchivedCertificateStillValidates(t *testing.T) {
	params := consensus.Params{Difficulty: 2}
	e := newArchiveEnv(t)
	e.buildChain(t, 5)
	path := filepath.Join(t.TempDir(), "chain.archive")
	if err := WriteChain(path, e.issuer.Node(), e.issuer.CertFor); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	tip := c.Blocks[len(c.Blocks)-1]
	cert := c.Certs[tip.Hash()]
	if cert == nil {
		t.Fatal("tip cert missing")
	}
	// The client needs only its pinned trust anchors, the tip header, and
	// the archived certificate.
	client := core.NewSuperlightClient(e.authority.PublicKey(), e.issuer.Measurement(), params)
	if err := client.ValidateChain(&tip.Header, cert); err != nil {
		t.Fatalf("ValidateChain from archive: %v", err)
	}
}
