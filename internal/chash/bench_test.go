package chash

import "testing"

// Benchmarks for the hashing core. The acceptance gate for the
// zero-allocation rewrite is ~0 allocs/op on the steady state for Node (the
// Merkle inner loop) and a ≥2× throughput win on the hash path; EXPERIMENTS.md
// records the before/after numbers.

var benchSink Hash

func BenchmarkSum(b *testing.B) {
	b.ReportAllocs()
	part1 := make([]byte, 32)
	part2 := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		benchSink = Sum(DomainHeader, part1, part2)
	}
}

func BenchmarkNode(b *testing.B) {
	b.ReportAllocs()
	left := Leaf([]byte("left"))
	right := Leaf([]byte("right"))
	for i := 0; i < b.N; i++ {
		benchSink = Node(left, right)
	}
}

func BenchmarkLeaf(b *testing.B) {
	b.ReportAllocs()
	payload := make([]byte, 100)
	for i := 0; i < b.N; i++ {
		benchSink = Leaf(payload)
	}
}

func BenchmarkLeafLarge(b *testing.B) {
	b.ReportAllocs()
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		benchSink = Leaf(payload)
	}
}

func BenchmarkSumParallel(b *testing.B) {
	b.ReportAllocs()
	left := Leaf([]byte("left"))
	right := Leaf([]byte("right"))
	b.RunParallel(func(pb *testing.PB) {
		var sink Hash
		for pb.Next() {
			sink = Node(left, right)
		}
		benchSink = sink
	})
}
