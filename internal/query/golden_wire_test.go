package query

import (
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	"dcert/internal/chash"
	"dcert/internal/mbtree"
	"dcert/internal/mpt"
)

// Golden byte-pins for the single-key query wire formats. The fixtures are
// fully synthetic and deterministic (fixed keys and values, no random
// signatures), so the digests pin the exact encodings across refactors: a
// batch-capable codec must keep every single-key message byte-identical to
// these vectors, or deployed SPs and clients stop interoperating.

// goldenTrie builds a small deterministic MPT.
func goldenTrie(t *testing.T) *mpt.Trie {
	t.Helper()
	tr := mpt.New()
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("acct/%02d", i)
		v := fmt.Sprintf("balance-%04d", i*37)
		if err := tr.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := tr.Hash(); err != nil {
		t.Fatalf("Hash: %v", err)
	}
	return tr
}

// goldenLower builds a small deterministic Merkle B⁺-tree.
func goldenLower(t *testing.T) *mbtree.Tree {
	t.Helper()
	tree, err := mbtree.New(LowerOrder)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for v := uint64(1); v <= 9; v++ {
		if err := tree.Insert(v, []byte(fmt.Sprintf("val-%d", v*11))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if _, err := tree.Root(); err != nil {
		t.Fatalf("Root: %v", err)
	}
	return tree
}

// goldenVectors renders every pinned message and returns name → hex digest of
// the encoded bytes.
func goldenVectors(t *testing.T) map[string]string {
	t.Helper()
	tr := goldenTrie(t)
	lower := goldenLower(t)

	upperW, err := tr.Prove([]byte("acct/07"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	lowerW, err := lower.WitnessForRange(2, 7)
	if err != nil {
		t.Fatalf("WitnessForRange: %v", err)
	}
	entries, err := lower.Range(2, 7)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}

	vectors := map[string][]byte{
		"request_state": (&Request{ID: 7, Kind: reqState, Key: "acct/07"}).Marshal(),
		"request_historical": (&Request{
			ID: 8, Kind: reqHistorical, Index: "hist", Key: "acct/07", Lo: 2, Hi: 7,
		}).Marshal(),
		"request_keyword": (&Request{
			ID: 9, Kind: reqKeyword, Index: "kw", Keywords: []string{"bank", "deposit_check"},
		}).Marshal(),
		"response_ok":  (&Response{ID: 7, Body: []byte("payload")}).Marshal(),
		"response_err": (&Response{ID: 7, Err: "unknown index"}).Marshal(),
		"state_result": (&StateResult{
			Key: "acct/07", Value: []byte("balance-0259"), Proof: upperW,
		}).Marshal(),
		"historical_result": (&HistoricalResult{
			Key: "acct/07", Lo: 2, Hi: 7, Entries: entries,
			Proof: &RangeProof{Upper: upperW, Lower: lowerW},
		}).Marshal(),
		"keyword_result": (&KeywordResult{
			Keywords: []string{"bank"},
			Lists:    [][]mbtree.Entry{entries},
			Proofs:   []*RangeProof{{Upper: upperW, Lower: lowerW}},
			Matches:  []Posting{{Version: 3, TxHash: chash.Leaf([]byte("tx-3"))}},
		}).Marshal(),
	}
	out := make(map[string]string, len(vectors))
	for name, raw := range vectors {
		sum := chash.Sum(chash.DomainNode, raw)
		out[name] = hex.EncodeToString(sum.Bytes())
	}
	return out
}

// Digests captured from the pre-fleet codebase (before the batch extension).
var goldenWireDigests = map[string]string{
	"request_state":      "eeae3f6a305a16b098adee7bfeb9b950c2f26c4bddde1877f9e75463ad6ddc9e",
	"request_historical": "0494a64c663b011644864201168acf33abebc4fdc7e36f68013f36ff95bb86c6",
	"request_keyword":    "0d3830088336aa00a787fe22b04648bc3cae2488ee4746f89295af0c0778f0c8",
	"response_ok":        "e5c8cef4139fb31d45ac7ebe784576140b4d24547f6713ad9eab902fbae62454",
	"response_err":       "37d06e6afb9236d3dc7dbdb1d8169aef873ca90856812caeb002c348be708093",
	"state_result":       "ce564e16cc2ca1451dc3830d91ed225323b1ad8c8bae496aa4a143002f4f5fa6",
	"historical_result":  "0a88d62eeaa7c403756a475dd5fd739aa9944158c0ea87220c4402b1f5b0742e",
	"keyword_result":     "c5916b049d93f6e0f5b8aea61b483d2e417e4ed9be357189e54a8be753318dfe",
}

func TestGoldenSingleKeyWireFormats(t *testing.T) {
	got := goldenVectors(t)
	if os.Getenv("DCERT_PRINT_GOLDEN") != "" {
		for name, d := range got {
			fmt.Printf("\t%q: %q,\n", name, d)
		}
	}
	for name, want := range goldenWireDigests {
		if got[name] != want {
			t.Errorf("%s: encoding drifted from golden vector\n got %s\nwant %s", name, got[name], want)
		}
	}
	if len(got) != len(goldenWireDigests) {
		t.Fatalf("vector count mismatch: got %d, pinned %d", len(got), len(goldenWireDigests))
	}
}

// The golden fixtures must round-trip through the parsers: a pin on bytes
// nobody can decode would be worthless.
func TestGoldenVectorsRoundTrip(t *testing.T) {
	tr := goldenTrie(t)
	upperW, err := tr.Prove([]byte("acct/07"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	res := &StateResult{Key: "acct/07", Value: []byte("balance-0259"), Proof: upperW}
	parsed, err := UnmarshalStateResult(res.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalStateResult: %v", err)
	}
	root, err := tr.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	got, err := mpt.VerifyProof(root, []byte(parsed.Key), parsed.Proof)
	if err != nil {
		t.Fatalf("VerifyProof: %v", err)
	}
	if string(got) != "balance-0259" {
		t.Fatalf("proven value %q", got)
	}
}
