package mht

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dcert/internal/chash"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(nil); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("want ErrEmptyTree, got %v", err)
	}
	if _, err := BuildFromDigests(nil); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("want ErrEmptyTree, got %v", err)
	}
}

func TestRootMatchesPaperExample(t *testing.T) {
	// Fig. 1: four states S1..S4; root = H(H(h1||h2) || H(h3||h4)).
	leaves := payloads(4)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	h1 := chash.Leaf(leaves[0])
	h2 := chash.Leaf(leaves[1])
	h3 := chash.Leaf(leaves[2])
	h4 := chash.Leaf(leaves[3])
	want := chash.Node(chash.Node(h1, h2), chash.Node(h3, h4))
	if tree.Root() != want {
		t.Fatal("root does not match hand-computed Fig. 1 structure")
	}
}

func TestSingleLeafTree(t *testing.T) {
	tree, err := Build(payloads(1))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tree.Root() != chash.Leaf([]byte("leaf-0")) {
		t.Fatal("single-leaf root must equal the leaf digest")
	}
	p, err := tree.Prove(0)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := p.Verify(tree.Root(), []byte("leaf-0")); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			leaves := payloads(n)
			tree, err := Build(leaves)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			for i := 0; i < n; i++ {
				p, err := tree.Prove(i)
				if err != nil {
					t.Fatalf("Prove(%d): %v", i, err)
				}
				if err := p.Verify(tree.Root(), leaves[i]); err != nil {
					t.Fatalf("Verify(%d): %v", i, err)
				}
			}
		})
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	leaves := payloads(8)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := tree.Prove(3)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := p.Verify(tree.Root(), []byte("tampered")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	leaves := payloads(8)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := tree.Prove(3)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := p.Verify(chash.Leaf([]byte("bogus root")), leaves[3]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestVerifyRejectsWrongIndex(t *testing.T) {
	leaves := payloads(8)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := tree.Prove(3)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	p.Index = 4 // claim a different position
	if err := p.Verify(tree.Root(), leaves[3]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestVerifyRejectsTruncatedSiblings(t *testing.T) {
	tree, err := Build(payloads(8))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := tree.Prove(0)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	p.Siblings = p.Siblings[:len(p.Siblings)-1]
	if err := p.Verify(tree.Root(), []byte("leaf-0")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestProveIndexRange(t *testing.T) {
	tree, err := Build(payloads(4))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := tree.Prove(-1); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
	if _, err := tree.Prove(4); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
}

func TestLeafDigest(t *testing.T) {
	leaves := payloads(4)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	d, err := tree.LeafDigest(2)
	if err != nil {
		t.Fatalf("LeafDigest: %v", err)
	}
	if d != chash.Leaf(leaves[2]) {
		t.Fatal("LeafDigest mismatch")
	}
	if _, err := tree.LeafDigest(99); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
}

func TestMultiProofRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 31, 64} {
		leaves := payloads(n)
		tree, err := Build(leaves)
		if err != nil {
			t.Fatalf("Build(%d): %v", n, err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 5; trial++ {
			k := 1 + rng.Intn(n)
			idx := rng.Perm(n)[:k]
			mp, err := tree.ProveMulti(idx)
			if err != nil {
				t.Fatalf("ProveMulti: %v", err)
			}
			digests := make(map[int]chash.Hash, k)
			for _, i := range idx {
				digests[i] = chash.Leaf(leaves[i])
			}
			if err := mp.Verify(tree.Root(), digests); err != nil {
				t.Fatalf("n=%d k=%d Verify: %v", n, k, err)
			}
		}
	}
}

func TestMultiProofRejectsTamperedLeaf(t *testing.T) {
	leaves := payloads(16)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mp, err := tree.ProveMulti([]int{2, 7, 11})
	if err != nil {
		t.Fatalf("ProveMulti: %v", err)
	}
	digests := map[int]chash.Hash{
		2:  chash.Leaf(leaves[2]),
		7:  chash.Leaf([]byte("tampered")),
		11: chash.Leaf(leaves[11]),
	}
	if err := mp.Verify(tree.Root(), digests); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestMultiProofRejectsMissingDigest(t *testing.T) {
	tree, err := Build(payloads(8))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mp, err := tree.ProveMulti([]int{1, 5})
	if err != nil {
		t.Fatalf("ProveMulti: %v", err)
	}
	if err := mp.Verify(tree.Root(), map[int]chash.Hash{1: chash.Leaf([]byte("leaf-1"))}); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestMultiProofRejectsExtraDigest(t *testing.T) {
	leaves := payloads(8)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mp, err := tree.ProveMulti([]int{1})
	if err != nil {
		t.Fatalf("ProveMulti: %v", err)
	}
	digests := map[int]chash.Hash{
		1: chash.Leaf(leaves[1]),
		2: chash.Leaf(leaves[2]),
	}
	if err := mp.Verify(tree.Root(), digests); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestMultiProofDeduplicatesIndices(t *testing.T) {
	leaves := payloads(8)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mp, err := tree.ProveMulti([]int{3, 3, 3})
	if err != nil {
		t.Fatalf("ProveMulti: %v", err)
	}
	if len(mp.Indices) != 1 {
		t.Fatalf("want 1 deduplicated index, got %d", len(mp.Indices))
	}
	if err := mp.Verify(tree.Root(), map[int]chash.Hash{3: chash.Leaf(leaves[3])}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestMultiProofAllLeavesNeedsNoFills(t *testing.T) {
	leaves := payloads(8)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mp, err := tree.ProveMulti([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatalf("ProveMulti: %v", err)
	}
	if len(mp.Fills) != 0 {
		t.Fatalf("proving all leaves should need 0 fills, got %d", len(mp.Fills))
	}
}

func TestProofQuick(t *testing.T) {
	// Property: for random tree sizes and indices, Prove/Verify round-trips.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		leaves := payloads(n)
		tree, err := Build(leaves)
		if err != nil {
			return false
		}
		i := rng.Intn(n)
		p, err := tree.Prove(i)
		if err != nil {
			return false
		}
		return p.Verify(tree.Root(), leaves[i]) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDeterminism(t *testing.T) {
	a, err := Build(payloads(13))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(payloads(13))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a.Root() != b.Root() {
		t.Fatal("tree construction must be deterministic")
	}
	if a.Len() != 13 {
		t.Fatalf("Len = %d, want 13", a.Len())
	}
}

func TestProofMarshalRoundTrip(t *testing.T) {
	leaves := payloads(13)
	tree, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := tree.Prove(7)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	parsed, err := UnmarshalProof(p.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalProof: %v", err)
	}
	if err := parsed.Verify(tree.Root(), leaves[7]); err != nil {
		t.Fatalf("round-tripped proof must verify: %v", err)
	}
	if p.EncodedSize() != len(p.Marshal()) {
		t.Fatalf("EncodedSize %d != Marshal len %d", p.EncodedSize(), len(p.Marshal()))
	}
	if _, err := UnmarshalProof([]byte{1, 2}); err == nil {
		t.Fatal("want error for garbage proof")
	}
}
