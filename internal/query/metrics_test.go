package query

import (
	"errors"
	"testing"
	"time"

	"dcert/internal/network"
	"dcert/internal/obs"
)

// TestQueryInstrumentationSuccess drives an instrumented requester/server
// pair, with the fabric duplicating every request so the SP's idempotent
// cache takes a hit, and checks all counters.
func TestQueryInstrumentationSuccess(t *testing.T) {
	r, _, _ := queryableRig(t)
	net := network.New()
	defer net.Close()
	net.SetFaults(&network.FaultPlan{Seed: 7, Rules: []network.FaultRule{
		{Topic: TopicQueries, Duplicate: 1.0},
	}})

	reg := obs.NewRegistry()
	srv := Serve(r.sp, net)
	defer srv.Stop()
	srv.Instrument(reg, "sp0")
	req := NewRequester(net, 2*time.Second)
	defer req.Close()
	req.Instrument(reg, "c0")

	if _, err := req.State("never-written"); err != nil {
		t.Fatalf("State: %v", err)
	}

	if got := reg.Counter("dcert_query_requests_total", "", obs.L("client", "c0")).Value(); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
	if got := reg.Counter("dcert_query_retries_total", "", obs.L("client", "c0")).Value(); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
	if got := reg.Histogram("dcert_query_rtt_seconds", "", nil, obs.L("client", "c0")).Count(); got != 1 {
		t.Errorf("rtt observations = %d, want 1", got)
	}

	// The duplicated request replays the cached response; the counters must
	// agree with the server's own Stats.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, replayed := srv.Stats(); replayed >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	computed, replayed := srv.Stats()
	hit := reg.Counter("dcert_sp_responses_total", "", obs.L("sp", "sp0"), obs.L("cache", "hit")).Value()
	miss := reg.Counter("dcert_sp_responses_total", "", obs.L("sp", "sp0"), obs.L("cache", "miss")).Value()
	if miss != computed || hit != replayed {
		t.Errorf("cache counters (miss %d, hit %d) disagree with Stats (computed %d, replayed %d)",
			miss, hit, computed, replayed)
	}
	if replayed == 0 {
		t.Error("duplicated request never hit the idempotent cache")
	}
}

// TestQueryInstrumentationTimeouts exhausts the retry budget against an empty
// fabric and checks retry/timeout/failure accounting.
func TestQueryInstrumentationTimeouts(t *testing.T) {
	net := network.New()
	defer net.Close()
	reg := obs.NewRegistry()
	req := NewRequesterWithPolicy(net, 10*time.Millisecond, RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond,
	})
	defer req.Close()
	req.Instrument(reg, "c1")

	if _, err := req.State("k"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	c := func(name string) uint64 { return reg.Counter(name, "", obs.L("client", "c1")).Value() }
	if got := c("dcert_query_requests_total"); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
	if got := c("dcert_query_retries_total"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := c("dcert_query_timeouts_total"); got != 3 {
		t.Errorf("timeouts = %d, want 3", got)
	}
	if got := c("dcert_query_failures_total"); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}
}
