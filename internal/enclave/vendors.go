package enclave

import (
	"fmt"
	"strings"
	"time"
)

// Vendor identifies a TEE implementation. §6 of the paper notes DCert does
// not depend on Intel specifically: "DCert can be deployed using any other
// TEE implementations such as ARM TrustZone, RISC-V MultiZone, and AMD
// Platform Security Processor". Each vendor profile is a cost model with
// that technology's characteristic overheads, so deployments (and the
// vendor-comparison ablation) can study the trade-offs.
type Vendor int

// Supported TEE vendors.
const (
	// VendorSGX is Intel SGX (the paper's evaluation platform).
	VendorSGX Vendor = iota + 1
	// VendorTrustZone is ARM TrustZone (world switches instead of Ecalls;
	// no EPC limit, slower secure-world crypto on typical cores).
	VendorTrustZone
	// VendorMultiZone is RISC-V MultiZone (very fast zone switches, modest
	// per-zone memory).
	VendorMultiZone
	// VendorSEV is the AMD Secure Processor / SEV family (VM-granularity
	// isolation: negligible call overhead, full-memory encryption factor).
	VendorSEV
)

// String implements fmt.Stringer.
func (v Vendor) String() string {
	switch v {
	case VendorSGX:
		return "Intel SGX"
	case VendorTrustZone:
		return "ARM TrustZone"
	case VendorMultiZone:
		return "RISC-V MultiZone"
	case VendorSEV:
		return "AMD SEV"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// ParseVendor converts a flag value.
func ParseVendor(s string) (Vendor, error) {
	switch strings.ToLower(s) {
	case "sgx", "intel", "":
		return VendorSGX, nil
	case "trustzone", "arm":
		return VendorTrustZone, nil
	case "multizone", "riscv", "risc-v":
		return VendorMultiZone, nil
	case "sev", "amd", "psp":
		return VendorSEV, nil
	default:
		return 0, fmt.Errorf("enclave: unknown TEE vendor %q", s)
	}
}

// AllVendors lists the supported TEEs.
func AllVendors() []Vendor {
	return []Vendor{VendorSGX, VendorTrustZone, VendorMultiZone, VendorSEV}
}

// CostModelFor returns the calibrated cost profile for a TEE vendor. The
// numbers are order-of-magnitude figures from published measurements; the
// point of the profiles is comparing the *shape* of DCert's costs across
// trust-hardware families, not micro-accuracy.
func CostModelFor(v Vendor) CostModel {
	switch v {
	case VendorTrustZone:
		return CostModel{
			TransitionLatency: 4 * time.Microsecond, // SMC world switch
			CopyPerKB:         200 * time.Nanosecond,
			ComputeFactor:     1.05, // no memory-encryption engine
			EPCBudget:         0,    // secure world bounded by TZASC carve-out, modeled unbounded
		}
	case VendorMultiZone:
		return CostModel{
			TransitionLatency: 1 * time.Microsecond, // sub-µs zone switch
			CopyPerKB:         300 * time.Nanosecond,
			ComputeFactor:     1.02,
			EPCBudget:         16 << 20, // small per-zone memory
			PagingPerKB:       40 * time.Microsecond,
		}
	case VendorSEV:
		return CostModel{
			TransitionLatency: 12 * time.Microsecond, // VMEXIT-class events
			CopyPerKB:         100 * time.Nanosecond, // data stays in the encrypted VM
			ComputeFactor:     1.08,                  // full-memory encryption
			EPCBudget:         0,                     // whole-VM memory
		}
	default:
		return DefaultCostModel()
	}
}
