package bench

import (
	"fmt"

	"dcert"
	"dcert/internal/workload"
)

// Fig8Point is one workload's certificate-construction breakdown, averaged
// over several blocks.
type Fig8Point struct {
	// Workload is the Blockbench workload.
	Workload workload.Kind
	// BlockSize is the transactions per block.
	BlockSize int
	// Breakdown components in seconds (averages).
	OutsideExec    float64
	OutsideProof   float64
	InsideExec     float64
	InsideOverhead float64
	// EnclaveFactor = (InsideExec + InsideOverhead) / InsideExec: the
	// slowdown the enclave imposes on the trusted portion (paper: ≤1.8×).
	EnclaveFactor float64
}

// Total is the end-to-end construction time.
func (p Fig8Point) Total() float64 {
	return p.OutsideExec + p.OutsideProof + p.InsideExec + p.InsideOverhead
}

// Fig8Result holds the per-workload construction costs.
type Fig8Result struct {
	Points []Fig8Point
}

// measureConstruction builds a deployment for one workload and averages the
// certificate-construction breakdown over n blocks of the given size.
func measureConstruction(kind workload.Kind, p Params, blockSize, blocks int) (Fig8Point, error) {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    kind,
		Contracts:   p.Contracts,
		Accounts:    p.Accounts,
		Difficulty:  4,
		EnclaveCost: dcert.DefaultEnclaveCostModel(),
		Seed:        int64(kind),
	})
	if err != nil {
		return Fig8Point{}, err
	}
	var sum dcert.CostBreakdown
	for i := 0; i < blocks; i++ {
		txs, err := dep.GenerateBlockTxs(blockSize)
		if err != nil {
			return Fig8Point{}, err
		}
		blk, err := dep.Miner().Propose(txs)
		if err != nil {
			return Fig8Point{}, err
		}
		_, bd, err := dep.Issuer().ProcessBlock(blk)
		if err != nil {
			return Fig8Point{}, fmt.Errorf("bench: certify %s block %d: %w", kind, i, err)
		}
		sum.OutsideExec += bd.OutsideExec
		sum.OutsideProof += bd.OutsideProof
		sum.InsideExec += bd.InsideExec
		sum.InsideOverhead += bd.InsideOverhead
	}
	n := float64(blocks)
	pt := Fig8Point{
		Workload:       kind,
		BlockSize:      blockSize,
		OutsideExec:    sum.OutsideExec / n,
		OutsideProof:   sum.OutsideProof / n,
		InsideExec:     sum.InsideExec / n,
		InsideOverhead: sum.InsideOverhead / n,
	}
	if pt.InsideExec > 0 {
		pt.EnclaveFactor = (pt.InsideExec + pt.InsideOverhead) / pt.InsideExec
	}
	return pt, nil
}

// RunFig8 measures Fig. 8: block-certificate construction cost for each of
// the five Blockbench workloads at the default block size, split into the
// untrusted pre-processing (transaction execution / read-write sets, Merkle
// proof generation) and the trusted in-enclave portion (real execution +
// simulated SGX overhead).
func RunFig8(scale Scale) (*Fig8Result, error) {
	p := ParamsFor(scale)
	res := &Fig8Result{}
	for _, kind := range workload.AllKinds() {
		pt, err := measureConstruction(kind, p, p.DefaultBlockSize, p.CertBlocks)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title: "Fig. 8 — block certificate construction cost per workload",
		Note:  "inside-enclave work dominates; 'enclave factor' is the trusted-portion slowdown (paper: ≤1.8×)",
		Columns: []string{
			"workload", "block size",
			"outside exec (ms)", "outside proof (ms)",
			"inside exec (ms)", "enclave overhead (ms)",
			"total (ms)", "enclave factor",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Workload.String(), fmt.Sprintf("%d", pt.BlockSize),
			ms(pt.OutsideExec), ms(pt.OutsideProof),
			ms(pt.InsideExec), ms(pt.InsideOverhead),
			ms(pt.Total()), fmt.Sprintf("%.2fx", pt.EnclaveFactor),
		})
	}
	return t
}

// Fig9Result holds the block-size sweep for the two macro workloads.
type Fig9Result struct {
	Points []Fig8Point
}

// RunFig9 measures Fig. 9: the impact of block size (number of transactions)
// on certificate construction for KVStore and SmallBank.
func RunFig9(scale Scale) (*Fig9Result, error) {
	p := ParamsFor(scale)
	res := &Fig9Result{}
	for _, kind := range []workload.Kind{workload.KVStore, workload.SmallBank} {
		for _, size := range p.BlockSizes {
			pt, err := measureConstruction(kind, p, size, p.CertBlocks)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title: "Fig. 9 — impact of block size on certificate construction (KV, SB)",
		Note:  "construction time and enclave overhead grow with the read/write set passed into the enclave",
		Columns: []string{
			"workload", "block size",
			"outside exec (ms)", "outside proof (ms)",
			"inside exec (ms)", "enclave overhead (ms)",
			"total (ms)",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Workload.String(), fmt.Sprintf("%d", pt.BlockSize),
			ms(pt.OutsideExec), ms(pt.OutsideProof),
			ms(pt.InsideExec), ms(pt.InsideOverhead),
			ms(pt.Total()),
		})
	}
	return t
}
