package network

import (
	"math/rand"
	"sync"
	"time"
)

// Fault injection: a deterministic adversarial-delivery layer for the
// simulated fabric. A FaultPlan is a seeded set of per-topic/per-publisher
// rules (drop, duplicate, reorder, latency jitter) plus runtime topic
// partitions, so integration tests can drive the whole DCert stack through
// reproducible network chaos and assert that safety and liveness survive it.

// FaultRule matches a subset of published messages and perturbs their
// delivery. Probabilities are in [0, 1]; a zero rule matches but does
// nothing.
type FaultRule struct {
	// Topic restricts the rule to one topic ("" matches every topic).
	Topic string
	// From restricts the rule to one publisher ("" matches every publisher).
	From string
	// Drop is the probability the message is silently lost.
	Drop float64
	// Duplicate is the probability the message is delivered twice (the
	// duplicate gets its own delay roll, so it may also arrive out of order).
	Duplicate float64
	// Reorder is the probability the message is held back by ReorderDelay,
	// letting later publishes overtake it.
	Reorder float64
	// ReorderDelay is how long a reordered message is held (default 2ms).
	ReorderDelay time.Duration
	// JitterMax adds a uniform random delay in [0, JitterMax) to every
	// matched delivery.
	JitterMax time.Duration
}

// matches reports whether the rule applies to a (topic, publisher) pair.
func (r *FaultRule) matches(topic, from string) bool {
	return (r.Topic == "" || r.Topic == topic) && (r.From == "" || r.From == from)
}

// defaultReorderDelay is applied when a rule reorders without specifying
// its own hold-back delay.
const defaultReorderDelay = 2 * time.Millisecond

// FaultPlan is a seeded fault configuration. The same plan applied to the
// same publish sequence perturbs it identically, making chaos tests
// reproducible.
type FaultPlan struct {
	// Seed initializes the plan's private random stream.
	Seed int64
	// Rules are evaluated in order; the first match governs the message.
	Rules []FaultRule
}

// delivery is one scheduled copy of a message.
type delivery struct {
	delay time.Duration
}

// verdict records what the fault layer decided for one publish, so the
// fabric's instrumentation can count exactly what was injected.
type verdict struct {
	dropped     bool
	partitioned bool
	duplicated  bool
	reordered   bool
}

// FaultTally is the fault layer's own ledger of what it did to one topic's
// publishes — the ground truth that instrumentation counters must reconcile
// against (injected drops == counted drops).
type FaultTally struct {
	// Published counts publishes that reached the fault layer.
	Published uint64
	// Dropped counts rule-induced silent losses.
	Dropped uint64
	// Partitioned counts publishes lost to an active topic partition.
	Partitioned uint64
	// Duplicated counts publishes delivered twice.
	Duplicated uint64
	// Reordered counts publishes (or their duplicates) held back.
	Reordered uint64
}

// faultState is the per-network runtime of a FaultPlan.
type faultState struct {
	mu          sync.Mutex
	rng         *rand.Rand
	rules       []FaultRule
	partitioned map[string]bool
	tally       map[string]*FaultTally
}

func newFaultState(plan *FaultPlan) *faultState {
	rules := make([]FaultRule, len(plan.Rules))
	copy(rules, plan.Rules)
	return &faultState{
		rng:         rand.New(rand.NewSource(plan.Seed)),
		rules:       rules,
		partitioned: make(map[string]bool),
		tally:       make(map[string]*FaultTally),
	}
}

// plan decides the fate of one published message: the returned slice holds
// one entry per copy to deliver (empty means dropped or partitioned), and the
// verdict reports which perturbations were applied.
func (f *faultState) plan(topic, from string) ([]delivery, verdict) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tally[topic]
	if t == nil {
		t = &FaultTally{}
		f.tally[topic] = t
	}
	t.Published++
	var v verdict
	if f.partitioned[topic] {
		v.partitioned = true
		t.Partitioned++
		return nil, v
	}
	var rule *FaultRule
	for i := range f.rules {
		if f.rules[i].matches(topic, from) {
			rule = &f.rules[i]
			break
		}
	}
	if rule == nil {
		return []delivery{{}}, v
	}
	if rule.Drop > 0 && f.rng.Float64() < rule.Drop {
		v.dropped = true
		t.Dropped++
		return nil, v
	}
	copies := 1
	if rule.Duplicate > 0 && f.rng.Float64() < rule.Duplicate {
		copies = 2
		v.duplicated = true
		t.Duplicated++
	}
	out := make([]delivery, 0, copies)
	for i := 0; i < copies; i++ {
		var d delivery
		if rule.Reorder > 0 && f.rng.Float64() < rule.Reorder {
			hold := rule.ReorderDelay
			if hold <= 0 {
				hold = defaultReorderDelay
			}
			d.delay += hold
			if !v.reordered {
				v.reordered = true
				t.Reordered++
			}
		}
		if rule.JitterMax > 0 {
			d.delay += time.Duration(f.rng.Int63n(int64(rule.JitterMax)))
		}
		out = append(out, d)
	}
	return out, v
}

// FaultTally returns the fault layer's ledger for one topic (zero without an
// installed plan or before the topic's first publish).
func (n *Network) FaultTally(topic string) FaultTally {
	n.mu.Lock()
	f := n.faults
	n.mu.Unlock()
	if f == nil {
		return FaultTally{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if t := f.tally[topic]; t != nil {
		return *t
	}
	return FaultTally{}
}

func (f *faultState) setPartition(topic string, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cut {
		f.partitioned[topic] = true
	} else {
		delete(f.partitioned, topic)
	}
}

// SetFaults installs (or, with nil, removes) a fault plan on the network.
// Installing a plan resets its random stream, so a fresh identical plan
// reproduces the same perturbations. Active partitions are cleared.
func (n *Network) SetFaults(plan *FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if plan == nil {
		n.faults = nil
		return
	}
	n.faults = newFaultState(plan)
}

// Partition cuts a topic: every publish on it is dropped until Heal. It is
// a no-op unless a fault plan is installed (a plan with no rules suffices).
func (n *Network) Partition(topic string) {
	n.mu.Lock()
	f := n.faults
	n.mu.Unlock()
	if f != nil {
		f.setPartition(topic, true)
	}
}

// Heal restores delivery on a partitioned topic. Messages published while
// the partition was up stay lost — recovering from that is the upper
// layers' job (retries, certificate catch-up).
func (n *Network) Heal(topic string) {
	n.mu.Lock()
	f := n.faults
	n.mu.Unlock()
	if f != nil {
		f.setPartition(topic, false)
	}
}
