// Package transport is DCert's wire transport plane: a dependency-free,
// length-prefixed TCP protocol that exposes the same Publish/Subscribe topic
// semantics as the in-process network.Bus, plus a request/response RPC path
// for queries and certificate catch-up. A Server bridges real sockets onto
// an in-process hub bus, so the node's issuers, responders, and query
// services — and the seeded fault-injection fabric — run unchanged while
// remote clients speak the protocol over loopback or a real network. A
// Client implements network.Bus over one connection, so followers and query
// requesters work identically against either fabric.
//
// The frame discipline reuses the storage engine's codec conventions
// (big-endian length prefix + CRC32C over the body), and the listener is
// TLS-ready: hand ServerConfig/Dial a *tls.Config and every frame rides an
// encrypted stream with zero protocol changes.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout (big-endian), after the storage segment log's discipline:
//
//	[4B body length][4B CRC32C of body][body: 1B kind + payload]
//
// A frame is the unit of both integrity and flow: every protocol message —
// handshake, subscribe, publish, RPC — is exactly one frame, so a corrupt
// or truncated frame is detected before any message field is parsed.

// Frame errors.
var (
	// ErrFrameTooLarge is returned when a length prefix exceeds the limit.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrFrameCorrupt is returned when a frame's CRC does not match its body.
	ErrFrameCorrupt = errors.New("transport: frame CRC mismatch")
	// ErrFrameTruncated is returned when a buffer ends mid-frame.
	ErrFrameTruncated = errors.New("transport: truncated frame")
	// ErrFrameEmpty is returned for a zero-length body (every message has at
	// least its kind byte).
	ErrFrameEmpty = errors.New("transport: empty frame body")
)

// crcTable is the Castagnoli polynomial, matching the storage engine.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-frame framing overhead.
const frameHeaderSize = 8

// MaxFrameSize bounds a frame body. It must admit the largest legitimate
// message (a full block or a multi-entry query proof); 16 MiB is far above
// any DCert payload while keeping a hostile length prefix from ballooning
// allocations.
const MaxFrameSize = 16 << 20

// AppendFrame appends one framed body to dst and returns the extended slice.
func AppendFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
	return append(dst, body...)
}

// DecodeFrame decodes the first frame in buf, returning its body and the
// total bytes consumed. It is a pure function over bytes (the fuzz target);
// the streaming reader below layers io on top of the same checks.
func DecodeFrame(buf []byte) (body []byte, n int, err error) {
	if len(buf) < frameHeaderSize {
		return nil, 0, ErrFrameTruncated
	}
	size := binary.BigEndian.Uint32(buf[:4])
	if size == 0 {
		return nil, 0, ErrFrameEmpty
	}
	if size > MaxFrameSize {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	if len(buf) < frameHeaderSize+int(size) {
		return nil, 0, ErrFrameTruncated
	}
	want := binary.BigEndian.Uint32(buf[4:8])
	body = buf[frameHeaderSize : frameHeaderSize+int(size)]
	if crc32.Checksum(body, crcTable) != want {
		return nil, 0, ErrFrameCorrupt
	}
	return body, frameHeaderSize + int(size), nil
}

// writeFrame writes one framed body in a single Write call, so a frame is
// never interleaved with another writer's bytes on the same stream.
func writeFrame(w io.Writer, body []byte) error {
	buf := AppendFrame(make([]byte, 0, frameHeaderSize+len(body)), body)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// readFrame reads exactly one frame from r. Unlike the storage log's opener
// — which truncates a torn tail and carries on — a wire peer that sends a
// corrupt or oversized frame is faulty or hostile, so the error is terminal
// for the connection.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size == 0 {
		return nil, ErrFrameEmpty
	}
	if size > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	want := binary.BigEndian.Uint32(hdr[4:8])
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("transport: short frame body: %w", err)
	}
	if crc32.Checksum(body, crcTable) != want {
		return nil, ErrFrameCorrupt
	}
	return body, nil
}
