package chash

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := Leaf([]byte("digest"))

	e := NewEncoder(64)
	e.PutUint64(42)
	e.PutUint32(7)
	e.PutByte(0xab)
	e.PutBool(true)
	e.PutBool(false)
	e.PutHash(h)
	e.PutBytes([]byte("payload"))
	e.PutString("name")

	d := NewDecoder(e.Bytes())
	if v, err := d.Uint64(); err != nil || v != 42 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if v, err := d.Uint32(); err != nil || v != 7 {
		t.Fatalf("Uint32 = %d, %v", v, err)
	}
	if v, err := d.Byte(); err != nil || v != 0xab {
		t.Fatalf("Byte = %x, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.ReadHash(); err != nil || v != h {
		t.Fatalf("ReadHash = %v, %v", v, err)
	}
	if v, err := d.ReadBytes(); err != nil || !bytes.Equal(v, []byte("payload")) {
		t.Fatalf("ReadBytes = %q, %v", v, err)
	}
	if v, err := d.ReadString(); err != nil || v != "name" {
		t.Fatalf("ReadString = %q, %v", v, err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(16)
	e.PutUint64(1)
	full := e.Bytes()

	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		if _, err := d.Uint64(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestDecoderTruncatedBytes(t *testing.T) {
	e := NewEncoder(16)
	e.PutBytes([]byte("hello"))
	full := e.Bytes()

	d := NewDecoder(full[:len(full)-1])
	if _, err := d.ReadBytes(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestDecoderHostileLengthPrefix(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(1 << 30) // absurd length prefix, no payload
	d := NewDecoder(e.Bytes())
	if _, err := d.ReadBytes(); !errors.Is(err, ErrOversized) {
		t.Fatalf("want ErrOversized, got %v", err)
	}
}

func TestDecoderNonCanonicalBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	if _, err := d.Bool(); err == nil {
		t.Fatal("want error for non-canonical bool")
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	d := NewDecoder([]byte{0, 1, 2})
	if err := d.Finish(); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func TestEncodeRoundTripQuick(t *testing.T) {
	f := func(a []byte, b []byte, u uint64, s string) bool {
		e := NewEncoder(32)
		e.PutBytes(a)
		e.PutUint64(u)
		e.PutBytes(b)
		e.PutString(s)

		d := NewDecoder(e.Bytes())
		ga, err := d.ReadBytes()
		if err != nil {
			return false
		}
		gu, err := d.Uint64()
		if err != nil {
			return false
		}
		gb, err := d.ReadBytes()
		if err != nil {
			return false
		}
		gs, err := d.ReadString()
		if err != nil {
			return false
		}
		if err := d.Finish(); err != nil {
			return false
		}
		return bytes.Equal(ga, a) && gu == u && bytes.Equal(gb, b) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadBytesReturnsCopy(t *testing.T) {
	e := NewEncoder(16)
	e.PutBytes([]byte("abc"))
	buf := e.Bytes()

	d := NewDecoder(buf)
	got, err := d.ReadBytes()
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	got[0] = 'X'
	d2 := NewDecoder(buf)
	again, err := d2.ReadBytes()
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if !bytes.Equal(again, []byte("abc")) {
		t.Fatal("ReadBytes must return a copy, not a view")
	}
}
