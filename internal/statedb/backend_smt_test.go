package statedb

import (
	"bytes"
	"errors"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/smt"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// newSMTEnv mirrors newTestEnv with the SMT backend.
func newSMTEnv(t *testing.T, kind workload.Kind) *testEnv {
	t.Helper()
	e := newTestEnv(t, kind)
	db, err := NewWithBackend(BackendSMT)
	if err != nil {
		t.Fatalf("NewWithBackend: %v", err)
	}
	e.db = db
	return e
}

func TestSMTBackendBasics(t *testing.T) {
	db, err := NewWithBackend(BackendSMT)
	if err != nil {
		t.Fatalf("NewWithBackend: %v", err)
	}
	if db.Backend() != BackendSMT {
		t.Fatal("wrong backend kind")
	}
	empty, err := db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if err := db.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get = %q", got)
	}
	root, err := db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if root == empty {
		t.Fatal("Set must change the root")
	}
	if _, err := db.Prove([]byte("k")); err == nil {
		t.Fatal("SMT backend must refuse MPT path proofs")
	}
}

func TestNewWithBackendRejectsUnknown(t *testing.T) {
	if _, err := NewWithBackend(BackendKind(99)); err == nil {
		t.Fatal("want error for unknown backend")
	}
	if BackendMPT.String() != "mpt" || BackendSMT.String() != "smt" {
		t.Fatal("BackendKind.String mismatch")
	}
}

func TestSMTReplayMatchesCommit(t *testing.T) {
	for _, kind := range workload.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			e := newSMTEnv(t, kind)
			for round := 0; round < 2; round++ {
				txs := e.block(t, 20)
				prevRoot, err := e.db.Root()
				if err != nil {
					t.Fatalf("Root: %v", err)
				}
				res, err := e.db.ExecuteBlock(e.reg, txs)
				if err != nil {
					t.Fatalf("ExecuteBlock: %v", err)
				}
				proof, err := e.db.UpdateProofFor(res)
				if err != nil {
					t.Fatalf("UpdateProofFor: %v", err)
				}
				if proof.Kind != BackendSMT || proof.SMT == nil {
					t.Fatal("proof must carry the SMT multiproof")
				}
				replayRoot, err := ReplayBlock(prevRoot, proof, e.reg, txs)
				if err != nil {
					t.Fatalf("ReplayBlock: %v", err)
				}
				commitRoot, err := e.db.Commit(res.WriteSet)
				if err != nil {
					t.Fatalf("Commit: %v", err)
				}
				if replayRoot != commitRoot {
					t.Fatalf("round %d: replay root != commit root", round)
				}
			}
		})
	}
}

func TestSMTReplayRejectsForgedPrior(t *testing.T) {
	e := newSMTEnv(t, workload.SmallBank)
	txs := e.block(t, 15)
	prevRoot, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.db.UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	for k := range proof.Prior {
		proof.Prior[k] = []byte("forged prior balance")
		break
	}
	if _, err := ReplayBlock(prevRoot, proof, e.reg, txs); !errors.Is(err, ErrReadSetMismatch) {
		t.Fatalf("want ErrReadSetMismatch, got %v", err)
	}
}

func TestSMTReplayRejectsForgedReadSet(t *testing.T) {
	e := newSMTEnv(t, workload.SmallBank)
	txs := e.block(t, 15)
	prevRoot, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.db.UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	if len(proof.ReadSet) == 0 {
		t.Skip("no reads")
	}
	for k := range proof.ReadSet {
		proof.ReadSet[k] = []byte("inconsistent declaration")
		break
	}
	if _, err := ReplayBlock(prevRoot, proof, e.reg, txs); !errors.Is(err, ErrReadSetMismatch) {
		t.Fatalf("want ErrReadSetMismatch, got %v", err)
	}
}

func TestSMTReplayRejectsUndeclaredBlock(t *testing.T) {
	e := newSMTEnv(t, workload.KVStore)
	blkA := e.block(t, 10)
	prevRoot, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	resA, err := e.db.ExecuteBlock(e.reg, blkA)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proofA, err := e.db.UpdateProofFor(resA)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	blkB := e.block(t, 10)
	if _, err := ReplayBlock(prevRoot, proofA, e.reg, blkB); err == nil {
		t.Fatal("different block must not replay over a mismatched prior set")
	}
}

func TestSMTEmptyBlockProof(t *testing.T) {
	// A block with zero transactions touches no state at all: the sentinel
	// proof path must still produce a valid (identity) root update.
	e := newSMTEnv(t, workload.DoNothing)
	prevRoot, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := e.db.ExecuteBlock(e.reg, nil)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.db.UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	replayRoot, err := ReplayBlock(prevRoot, proof, e.reg, nil)
	if err != nil {
		t.Fatalf("ReplayBlock: %v", err)
	}
	if replayRoot != prevRoot {
		t.Fatal("empty block must preserve the root")
	}
}

func TestNonceReplayProtection(t *testing.T) {
	// Re-including a transaction (same nonce) must invalidate the block.
	e := newTestEnv(t, workload.KVStore)
	txs := e.block(t, 3)
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	if _, err := e.db.Commit(res.WriteSet); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Replay the very same transactions against the advanced state.
	if _, err := e.db.ExecuteBlock(e.reg, txs); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("want ErrTxInvalid for replayed txs, got %v", err)
	}
	// Duplicating one tx inside a single block is also rejected.
	fresh := e.block(t, 2)
	dup := append(fresh, fresh[0])
	if _, err := e.db.ExecuteBlock(e.reg, dup); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("want ErrTxInvalid for in-block duplicate, got %v", err)
	}
}

func TestNonceBumpSurvivesRevert(t *testing.T) {
	// A reverted transaction still consumes its nonce, so the next tx from
	// the same sender (with the following nonce) is accepted.
	accounts, err := workload.NewAccounts(1)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	reg := newSBRegistry(t)
	db := New()
	amount := func(v uint64) []byte {
		b := make([]byte, 8)
		b[7] = byte(v)
		return b
	}
	mk := func(nonce uint64, method string, args ...[]byte) *chain.Transaction {
		tx := &chain.Transaction{Nonce: nonce, Contract: workload.ContractName(workload.SmallBank, 0), Method: method, Args: args}
		if err := tx.Sign(accounts[0].Key); err != nil {
			t.Fatalf("Sign: %v", err)
		}
		return tx
	}
	txs := []*chain.Transaction{
		mk(0, "write_check", []byte("a"), amount(5)), // overdraft: reverts
		mk(1, "deposit_check", []byte("a"), amount(9)),
	}
	res, err := db.ExecuteBlock(reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	if len(res.Reverted) != 1 || res.Reverted[0] != 0 {
		t.Fatalf("Reverted = %v, want [0]", res.Reverted)
	}
}

// newSBRegistry builds a registry with one SmallBank contract.
func newSBRegistry(t *testing.T) *vm.Registry {
	t.Helper()
	reg := vm.NewRegistry()
	if err := workload.Register(reg, workload.SmallBank, 1); err != nil {
		t.Fatalf("Register: %v", err)
	}
	return reg
}

func TestSMTMultiproofMarshalRoundTrip(t *testing.T) {
	tree, err := smt.New(64)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	keys := make([]smt.Key, 10)
	for i := range keys {
		keys[i] = smt.KeyFromString(string(rune('a' + i)))
		tree.Put(keys[i], valueDigest([]byte{byte(i + 1)}))
	}
	proof, err := tree.Prove(keys[:4])
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	parsed, err := smt.UnmarshalMultiproof(proof.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalMultiproof: %v", err)
	}
	values := make(map[smt.Key]chash.Hash, 4)
	for i := 0; i < 4; i++ {
		values[keys[i]] = valueDigest([]byte{byte(i + 1)})
	}
	if err := parsed.Verify(tree.Root(), values); err != nil {
		t.Fatalf("round-tripped proof must verify: %v", err)
	}
	if _, err := smt.UnmarshalMultiproof([]byte{1, 2}); err == nil {
		t.Fatal("want error for garbage proof")
	}
}

func TestBackendsAgreeOnValues(t *testing.T) {
	// The same block sequence over the MPT and SMT backends must produce
	// identical state contents (commitments differ by construction).
	mptEnv := newTestEnv(t, workload.SmallBank)
	smtDB, err := NewWithBackend(BackendSMT)
	if err != nil {
		t.Fatalf("NewWithBackend: %v", err)
	}
	touched := make(map[string]bool)
	for round := 0; round < 3; round++ {
		txs := mptEnv.block(t, 15)
		resA, err := mptEnv.db.ExecuteBlock(mptEnv.reg, txs)
		if err != nil {
			t.Fatalf("mpt ExecuteBlock: %v", err)
		}
		resB, err := smtDB.ExecuteBlock(mptEnv.reg, txs)
		if err != nil {
			t.Fatalf("smt ExecuteBlock: %v", err)
		}
		if len(resA.WriteSet) != len(resB.WriteSet) {
			t.Fatalf("round %d: write-set sizes differ: %d vs %d", round, len(resA.WriteSet), len(resB.WriteSet))
		}
		for k, v := range resA.WriteSet {
			if !bytes.Equal(resB.WriteSet[k], v) {
				t.Fatalf("round %d: write %q differs across backends", round, k)
			}
			touched[k] = true
		}
		if _, err := mptEnv.db.Commit(resA.WriteSet); err != nil {
			t.Fatalf("mpt Commit: %v", err)
		}
		if _, err := smtDB.Commit(resB.WriteSet); err != nil {
			t.Fatalf("smt Commit: %v", err)
		}
	}
	// Every touched key reads back identically from both backends.
	for k := range touched {
		a, err := mptEnv.db.Get([]byte(k))
		if err != nil {
			t.Fatalf("mpt Get: %v", err)
		}
		b, err := smtDB.Get([]byte(k))
		if err != nil {
			t.Fatalf("smt Get: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("key %q differs across backends", k)
		}
	}
	if len(touched) == 0 {
		t.Fatal("no keys to compare")
	}
}
